//! A fault-injecting backend wrapper for disaster drills.
//!
//! [`FaultyStore`] wraps any backend of the unified [`ae_api`] family and
//! injects two kinds of fault into a chosen set of block ids:
//!
//! - **blackhole** ([`FaultyStore::fail`]): fetches of a failed block
//!   answer `None` — the block's hardware is gone;
//! - **corruption** ([`FaultyStore::corrupt`]): fetches return the stored
//!   block with its bytes deterministically garbled (every byte XOR
//!   `0x5A`) while [`BlockSource::read`] reports
//!   [`StoreError::Corrupted`] — a bit-rotted or tampered block a
//!   checksum-verifying reader catches and a naive reader would trust.
//!
//! The wrapped backend's other contents stay reachable. Repair flows heal
//! naturally — a write to a failed or corrupted id models replaced
//! hardware, clearing the fault and storing the regenerated block — so
//! archive disaster scenarios (put → fail/corrupt → degraded get → scrub)
//! run in tests and examples against **every** roster scheme, over any
//! inner backend, with no scheme- or backend-specific plumbing.

use ae_api::{BlockRepo, BlockSink, BlockSource, StoreError};
use ae_blocks::{Block, BlockId};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;

/// The deterministic tamper mask corruption applies to every byte.
const GARBLE: u8 = 0x5A;

/// A backend wrapper that makes selected blocks unavailable or garbled.
#[derive(Debug)]
pub struct FaultyStore<S: BlockRepo + Send + ?Sized> {
    down: RwLock<HashSet<BlockId>>,
    garbled: RwLock<HashSet<BlockId>>,
    inner: Arc<S>,
}

impl<S: BlockRepo + Send + ?Sized> FaultyStore<S> {
    /// Wraps `inner` with no faults injected.
    pub fn new(inner: Arc<S>) -> Self {
        FaultyStore {
            down: RwLock::new(HashSet::new()),
            garbled: RwLock::new(HashSet::new()),
            inner,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// Makes `id` unavailable until it is restored or rewritten.
    pub fn fail(&self, id: BlockId) {
        self.down.write().insert(id);
    }

    /// Fails every id in the iterator.
    pub fn fail_all(&self, ids: impl IntoIterator<Item = BlockId>) {
        let mut down = self.down.write();
        down.extend(ids);
    }

    /// Garbles `id`: fetches return its stored bytes tampered (each byte
    /// XOR `0x5A`) and [`BlockSource::read`] reports
    /// [`StoreError::Corrupted`], until the block is rewritten or
    /// restored. A blackhole fault on the same id takes precedence (gone
    /// beats garbled).
    pub fn corrupt(&self, id: BlockId) {
        self.garbled.write().insert(id);
    }

    /// Garbles every id in the iterator.
    pub fn corrupt_all(&self, ids: impl IntoIterator<Item = BlockId>) {
        let mut garbled = self.garbled.write();
        garbled.extend(ids);
    }

    /// Clears the fault on `id` (the hardware came back with its contents
    /// intact — the wrapped backend never lost the true bytes). Returns
    /// whether a fault of either kind was present.
    pub fn restore(&self, id: BlockId) -> bool {
        let down = self.down.write().remove(&id);
        let garbled = self.garbled.write().remove(&id);
        down || garbled
    }

    /// Clears every injected fault, of both kinds.
    pub fn restore_all(&self) {
        self.down.write().clear();
        self.garbled.write().clear();
    }

    /// Number of currently failed (blackholed) ids.
    pub fn failed_len(&self) -> usize {
        self.down.read().len()
    }

    /// Number of currently garbled ids.
    pub fn corrupted_len(&self) -> usize {
        self.garbled.read().len()
    }

    fn is_down(&self, id: BlockId) -> bool {
        self.down.read().contains(&id)
    }

    fn is_garbled(&self, id: BlockId) -> bool {
        self.garbled.read().contains(&id)
    }

    fn tamper(block: Block) -> Block {
        Block::from_vec(block.as_slice().iter().map(|b| b ^ GARBLE).collect())
    }
}

impl<S: BlockRepo + Send + ?Sized> BlockSource for FaultyStore<S> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        if self.is_down(id) {
            return None;
        }
        let block = self.inner.fetch(id)?;
        // A garbled block is still *there* — a naive fetch gets tampered
        // bytes, exactly the hazard content-level CRCs exist to catch.
        Some(if self.is_garbled(id) {
            Self::tamper(block)
        } else {
            block
        })
    }

    fn has(&self, id: BlockId) -> bool {
        !self.is_down(id) && self.inner.has(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        if self.is_down(id) {
            return Err(StoreError::NotFound(id));
        }
        let result = self.inner.read(id);
        if result.is_ok() && self.is_garbled(id) {
            return Err(StoreError::Corrupted(id));
        }
        result
    }
}

impl<S: BlockRepo + Send + ?Sized> BlockSink for FaultyStore<S> {
    /// A write models replaced hardware: faults of both kinds clear and
    /// the block is stored, so repair flows (scrub, re-encode) heal
    /// injected failures.
    fn store(&self, id: BlockId, block: Block) {
        self.down.write().remove(&id);
        self.garbled.write().remove(&id);
        self.inner.store(id, block);
    }

    fn remove(&self, id: BlockId) -> bool {
        self.down.write().remove(&id);
        self.garbled.write().remove(&id);
        self.inner.remove(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    #[test]
    fn failed_blocks_vanish_until_restored() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.store(id(1), Block::from_vec(vec![1]));
        faulty.fail(id(1));
        assert!(!faulty.has(id(1)));
        assert_eq!(faulty.fetch(id(1)), None);
        assert_eq!(faulty.read(id(1)), Err(StoreError::NotFound(id(1))));
        // The contents were never lost in the wrapped store.
        assert!(faulty.inner().contains(id(1)));
        assert!(faulty.restore(id(1)));
        assert_eq!(faulty.fetch(id(1)).unwrap().as_slice(), &[1]);
    }

    #[test]
    fn writes_heal_faults() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.fail_all([id(1), id(2)]);
        assert_eq!(faulty.failed_len(), 2);
        faulty.store(id(1), Block::from_vec(vec![9]));
        assert_eq!(faulty.failed_len(), 1);
        assert!(faulty.has(id(1)), "rewrite models replaced hardware");
        faulty.restore_all();
        assert_eq!(faulty.failed_len(), 0);
    }

    #[test]
    fn remove_clears_the_fault_too() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.store(id(3), Block::zero(2));
        faulty.fail(id(3));
        assert!(BlockSink::remove(&faulty, id(3)));
        assert_eq!(faulty.failed_len(), 0);
        assert!(!faulty.inner().contains(id(3)));
    }

    #[test]
    fn corrupted_blocks_garble_fetch_and_fail_read() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.store(id(1), Block::from_vec(vec![1, 2, 3]));
        faulty.corrupt(id(1));
        assert_eq!(faulty.corrupted_len(), 1);
        // fetch serves tampered bytes — present but wrong, deterministic.
        let garbled = faulty.fetch(id(1)).unwrap();
        assert_eq!(garbled.as_slice(), &[1 ^ 0x5A, 2 ^ 0x5A, 3 ^ 0x5A]);
        assert!(faulty.has(id(1)), "a garbled block is still there");
        // read catches it, typed.
        assert_eq!(faulty.read(id(1)), Err(StoreError::Corrupted(id(1))));
        // The wrapped store never lost the true bytes.
        assert_eq!(faulty.inner().get(id(1)).unwrap().as_slice(), &[1, 2, 3]);
        assert!(faulty.restore(id(1)));
        assert_eq!(faulty.read(id(1)).unwrap().as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn corruption_of_an_absent_block_stays_absent() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.corrupt(id(9));
        assert_eq!(faulty.fetch(id(9)), None);
        assert_eq!(faulty.read(id(9)), Err(StoreError::NotFound(id(9))));
    }

    #[test]
    fn blackhole_beats_corruption_and_writes_heal_both() {
        let faulty = FaultyStore::new(Arc::new(MemStore::new()));
        faulty.store(id(2), Block::from_vec(vec![7]));
        faulty.corrupt_all([id(2), id(3)]);
        faulty.fail(id(2));
        assert_eq!(faulty.fetch(id(2)), None, "gone beats garbled");
        assert_eq!(faulty.read(id(2)), Err(StoreError::NotFound(id(2))));
        // A rewrite models replaced hardware: both faults clear.
        faulty.store(id(2), Block::from_vec(vec![8]));
        assert_eq!(faulty.read(id(2)).unwrap().as_slice(), &[8]);
        assert_eq!(faulty.corrupted_len(), 1);
        faulty.restore_all();
        assert_eq!(faulty.corrupted_len(), 0);
        // remove clears the corruption mark too.
        faulty.store(id(4), Block::zero(1));
        faulty.corrupt(id(4));
        assert!(BlockSink::remove(&faulty, id(4)));
        assert_eq!(faulty.corrupted_len(), 0);
    }

    #[test]
    fn archive_reads_and_scrub_survive_corrupted_data_blocks() {
        use crate::archive::Archive;
        use ae_lattice::Config;
        let faulty = Arc::new(FaultyStore::new(Arc::new(MemStore::new())));
        let mut ar = Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::clone(&faulty));
        let body: Vec<u8> = (0..400u16).map(|i| (i % 251) as u8).collect();
        ar.put("f", &body).unwrap();
        faulty.corrupt(id(1));
        // Degraded read: the CRC-failing block is rebuilt from redundancy,
        // never served garbled.
        assert_eq!(ar.get("f").unwrap(), body);
        // Scrub quarantines and re-materializes it; faults are gone.
        assert!(ar.scrub() >= 1);
        assert_eq!(faulty.corrupted_len(), 0);
        assert_eq!(faulty.read(id(1)).unwrap().as_slice(), &body[..64]);
    }
}
