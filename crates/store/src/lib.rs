//! Simulated distributed storage substrate for entangled storage systems.
//!
//! The paper's evaluation (§V.C) and use cases (§IV) assume a storage layer
//! with *locations* (disks, machines or peers) that hold blocks and fail —
//! individually or en masse. This crate builds that layer:
//!
//! * [`store`] — the [`store::BlockStore`] trait and a thread-safe in-memory
//!   implementation with checksum verification on reads.
//! * [`cluster`] — failure domains: a set of locations with availability
//!   state, plus disaster injection ("simulates disasters by changing the
//!   availability of a certain number of locations", §V.C).
//! * [`placement`] — the store-side half of block placement: the canonical
//!   [`ae_api::Placement`] policies applied to per-id keys
//!   ([`placement::PlaceBlocks`]).
//! * [`distributed`] — [`distributed::DistributedStore`]: a block store
//!   sharded over cluster locations; reads fail while a block's location is
//!   down.
//! * [`chain`] — the α = 1 open/closed entanglement chain of §IV.B.1 as a
//!   first-class [`ae_api::RedundancyScheme`]
//!   ([`chain::EntangledChain`]), with the typed open-chain
//!   [`chain::ExtremityWarning`].
//! * [`geo`] — use case A (§IV.A): the two-tier cooperative backup. The
//!   namespaced per-user lattice is itself a scheme ([`geo::GeoLattice`]);
//!   [`geo::GeoBackup`] is the thin broker wrapper over it.
//! * [`array`] — use case B (§IV.B): entangled mirror disk arrays — drive
//!   topology (full partition / striping layouts) over the chain scheme.
//! * [`archive`] — the user-facing layer: an append-only file archive with
//!   a manifest, degraded reads, scrubbing and end-to-end verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod array;
pub mod chain;
pub mod cluster;
pub mod distributed;
pub mod geo;
pub mod placement;
pub mod store;

pub use chain::{ChainMode, EntangledChain, ExtremityWarning};
pub use cluster::{Cluster, LocationId};
pub use distributed::DistributedStore;
pub use geo::{GeoBackup, GeoLattice};
pub use placement::{PlaceBlocks, Placement};
pub use store::{BlockStore, MemStore, StoreError, StoreRepo};
