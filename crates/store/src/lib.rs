//! Simulated distributed storage substrate for entangled storage systems.
//!
//! The paper's evaluation (§V.C) and use cases (§IV) assume a storage layer
//! with *locations* (disks, machines or peers) that hold blocks and fail —
//! individually or en masse. This crate builds that layer:
//!
//! * [`store`] — the [`store::BlockStore`] trait and a thread-safe in-memory
//!   implementation with checksum verification on reads.
//! * [`cluster`] — failure domains: a set of locations with availability
//!   state, plus disaster injection ("simulates disasters by changing the
//!   availability of a certain number of locations", §V.C).
//! * [`placement`] — block-to-location mapping policies: uniform random
//!   (the paper's default) and round-robin (the earlier work's assumption,
//!   kept for the placement ablation).
//! * [`distributed`] — [`distributed::DistributedStore`]: a block store
//!   sharded over cluster locations; reads fail while a block's location is
//!   down.
//! * [`geo`] — use case A (§IV.A): the two-tier cooperative backup with
//!   broker nodes that entangle local files and storage nodes that hold
//!   parities for others.
//! * [`array`] — use case B (§IV.B): entangled mirror disk arrays with full
//!   partition and block-level striping layouts, open or closed chains.
//! * [`archive`] — the user-facing layer: an append-only file archive with
//!   a manifest, degraded reads, scrubbing and end-to-end verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod array;
pub mod cluster;
pub mod distributed;
pub mod geo;
pub mod placement;
pub mod store;

pub use cluster::{Cluster, LocationId};
pub use distributed::DistributedStore;
pub use placement::Placement;
pub use store::{BlockStore, MemStore, StoreError, StoreRepo};
