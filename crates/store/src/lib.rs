//! Simulated distributed storage substrate for entangled storage systems.
//!
//! The paper's evaluation (§V.C) and use cases (§IV) assume a storage layer
//! with *locations* (disks, machines or peers) that hold blocks and fail —
//! individually or en masse. This crate builds that layer. Every backend
//! implements the **unified** `ae_api` family ([`ae_api::BlockSource`] /
//! [`ae_api::BlockSink`] / [`ae_api::BlockRepo`]) directly — there is no
//! store-side trait family or adapter anymore — so archives, encoders and
//! repair planners run over any of them unchanged:
//!
//! * [`store`] — [`store::MemStore`], the thread-safe in-memory backend
//!   with checksum verification on reads.
//! * [`cluster`] — failure domains: a set of locations with availability
//!   state, plus disaster injection ("simulates disasters by changing the
//!   availability of a certain number of locations", §V.C).
//! * [`placement`] — the store-side half of block placement: the canonical
//!   [`ae_api::Placement`] policies applied to per-id keys
//!   ([`placement::PlaceBlocks`]).
//! * [`distributed`] — [`distributed::DistributedStore`]: a backend
//!   sharded over cluster locations; reads fail while a block's location
//!   is down.
//! * [`tiered`] — [`tiered::TieredStore`]: a fast local tier (data) over a
//!   shared remote tier (redundancy), the §IV.A two-tier flow as a
//!   first-class backend.
//! * [`fault`] — [`fault::FaultyStore`]: a fault-injecting wrapper for
//!   disaster drills over any inner backend.
//! * [`chain`] — the α = 1 open/closed entanglement chain of §IV.B.1 as a
//!   first-class [`ae_api::RedundancyScheme`]
//!   ([`chain::EntangledChain`]), with the typed open-chain
//!   [`chain::ExtremityWarning`].
//! * [`geo`] — use case A (§IV.A): the two-tier cooperative backup. The
//!   namespaced per-user lattice is itself a scheme ([`geo::GeoLattice`]);
//!   [`geo::GeoBackup`] is the thin broker wrapper over it, and
//!   [`geo::Community`] fans community-wide maintenance out per user.
//! * [`mod@array`] — use case B (§IV.B): entangled mirror disk arrays — drive
//!   topology (full partition / striping layouts) over the chain scheme.
//! * [`archive`] — the user-facing layer: an append-only file archive,
//!   generic over `Arc<dyn RedundancyScheme>` *and* over the backend, with
//!   a manifest, degraded reads, scrubbing and end-to-end verification —
//!   crash-recoverable via [`archive::Archive::open`].
//! * [`meta`] — the archive's on-backend metadata journal: the versioned,
//!   checksummed record format persisting the manifest, the write-order
//!   id log and the encoder frontier through any backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod array;
pub mod chain;
pub mod cluster;
pub mod distributed;
pub mod fault;
pub mod geo;
pub mod meta;
pub mod placement;
pub mod store;
pub mod tiered;

pub use archive::{Archive, ArchiveError, MetaDamage, RecoveryError};
pub use chain::{ChainMode, EntangledChain, ExtremityWarning};
pub use cluster::{Cluster, LocationId};
pub use distributed::DistributedStore;
pub use fault::FaultyStore;
pub use geo::{Community, GeoBackup, GeoLattice};
pub use meta::MetaConfig;
pub use placement::{PlaceBlocks, Placement};
pub use store::{MemStore, StoreError};
pub use tiered::TieredStore;
