//! Use case A: a geo-replicated cooperative backup (§IV.A).
//!
//! A community shares storage: "Users keep their own data in their local
//! computers (nodes) and upload redundant information to geographically
//! distributed nodes." The lower tier is storage nodes holding p-blocks for
//! others; the upper tier is broker nodes that encode and decode. Here one
//! [`GeoBackup`] is a user's broker: it entangles local files, pushes the
//! parities to a [`DistributedStore`] of remote nodes, and repairs local
//! data loss from complete pp-tuples fetched remotely — following the
//! Table III steps (obtain tuple ids → choose p-block → locate → get →
//! repair).
//!
//! The namespaced lattice itself is a first-class scheme: [`GeoLattice`]
//! wraps an [`ae_core::Code`] and tags every block id with the user's
//! namespace ("block keys are derived from the node id and the block
//! position in the lattice", §IV.A), implementing the full
//! [`RedundancyScheme`] surface including the O(1)
//! `dense_index`/`block_at` bijection. Multiple users' lattices therefore
//! coexist in one id space, and geo-node-failure scenarios run through
//! the same generic `SchemePlane` and repair planners as every other
//! scheme; [`GeoBackup`] is a thin wrapper holding a
//! [`TieredStore`] (local data tier over the shared remote tier) — the
//! two-tier routing is a first-class backend now, not broker-private
//! adapters.

use crate::distributed::DistributedStore;
use crate::placement::Placement;
use crate::store::StoreError;
use crate::tiered::TieredStore;
use ae_api::{
    AeError, BlockSink, BlockSource, EncodeReport, RedundancyScheme, RepairCost, RepairError,
};
use ae_blocks::{Block, BlockId, EdgeId, NodeId};
use ae_core::Code;
use ae_lattice::Config;
use std::fmt;
use std::sync::Arc;

/// High bits used to namespace one user's lattice within a shared remote
/// tier: multiple lattices coexist in the system (§IV.A), so block keys are
/// "derived from the node id and the block position in the lattice".
const NS_SHIFT: u32 = 48;

/// Low bits holding the lattice-local position.
const NS_MASK: u64 = (1 << NS_SHIFT) - 1;

/// Applies a namespace tag to a lattice-local block id.
fn ns_apply(tag: u64, id: BlockId) -> BlockId {
    match id {
        BlockId::Data(NodeId(i)) => BlockId::Data(NodeId(i | tag)),
        BlockId::Parity(EdgeId { class, left }) => {
            BlockId::Parity(EdgeId::new(class, NodeId(left.0 | tag)))
        }
        other => other,
    }
}

/// Strips the namespace tag, answering `None` for ids of other users (or
/// other schemes).
fn ns_strip(tag: u64, id: BlockId) -> Option<BlockId> {
    match id {
        BlockId::Data(NodeId(i)) if i & !NS_MASK == tag => Some(BlockId::Data(NodeId(i & NS_MASK))),
        BlockId::Parity(EdgeId { class, left }) if left.0 & !NS_MASK == tag => Some(
            BlockId::Parity(EdgeId::new(class, NodeId(left.0 & NS_MASK))),
        ),
        _ => None,
    }
}

/// Maps every id inside a repair error into the namespaced key space, so
/// round-based planners subscribe to blockers that actually exist in the
/// namespaced universe.
fn ns_apply_err(tag: u64, err: RepairError) -> RepairError {
    match err {
        RepairError::NoCompleteTuple { target, missing } => RepairError::NoCompleteTuple {
            target: ns_apply(tag, target),
            missing: missing.into_iter().map(|m| ns_apply(tag, m)).collect(),
        },
        RepairError::Unrecoverable { targets } => RepairError::Unrecoverable {
            targets: targets.into_iter().map(|t| ns_apply(tag, t)).collect(),
        },
        RepairError::ForeignBlock { id } => RepairError::ForeignBlock {
            id: ns_apply(tag, id),
        },
        RepairError::OutOfExtent { id, written } => RepairError::OutOfExtent {
            id: ns_apply(tag, id),
            written,
        },
        other => other,
    }
}

/// A [`BlockSource`] view that translates lattice-local reads into the
/// namespaced key space.
struct NsSource<'a> {
    inner: &'a dyn BlockSource,
    tag: u64,
}

impl BlockSource for NsSource<'_> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.inner.fetch(ns_apply(self.tag, id))
    }

    fn has(&self, id: BlockId) -> bool {
        self.inner.has(ns_apply(self.tag, id))
    }
}

/// A [`BlockSink`] that translates lattice-local writes into the
/// namespaced key space.
struct NsSink<'a> {
    inner: &'a dyn BlockSink,
    tag: u64,
}

impl BlockSink for NsSink<'_> {
    fn store(&self, id: BlockId, block: Block) {
        self.inner.store(ns_apply(self.tag, id), block);
    }
}

/// One user's namespaced entanglement lattice as a first-class scheme:
/// an [`ae_core::Code`] whose every block id carries the user's namespace
/// tag in the high 16 bits (lattice positions must stay below
/// 2^48).
///
/// Everything — encoding, repair, the availability hooks, the dense
/// bijection — delegates to the wrapped code with ids translated at the
/// boundary, so the generic plane and planners drive a user's lattice
/// exactly like any other scheme while several users share one id space.
pub struct GeoLattice {
    code: Code,
    user: u64,
    tag: u64,
}

impl GeoLattice {
    /// Wraps `code` for `user` (user 0 is the untagged namespace).
    pub fn new(code: Code, user: u64) -> Self {
        GeoLattice {
            code,
            user,
            tag: user << NS_SHIFT,
        }
    }

    /// The wrapped code.
    pub fn code(&self) -> &Code {
        &self.code
    }

    /// The namespace owner.
    pub fn user(&self) -> u64 {
        self.user
    }

    /// Maps a lattice-local id into this user's key space.
    pub fn ns(&self, id: BlockId) -> BlockId {
        ns_apply(self.tag, id)
    }

    /// The inverse: strips this user's tag, `None` for foreign ids.
    pub fn ns_strip(&self, id: BlockId) -> Option<BlockId> {
        ns_strip(self.tag, id)
    }
}

impl RedundancyScheme for GeoLattice {
    fn scheme_name(&self) -> String {
        format!("geo[u{}] {}", self.user, self.code.scheme_name())
    }

    fn data_written(&self) -> u64 {
        self.code.data_written()
    }

    fn repair_cost(&self) -> RepairCost {
        self.code.repair_cost()
    }

    fn encode_batch(
        &self,
        blocks: &[Block],
        sink: &dyn BlockSink,
    ) -> Result<EncodeReport, AeError> {
        let ns_sink = NsSink {
            inner: sink,
            tag: self.tag,
        };
        let report = self.code.encode_batch(blocks, &ns_sink)?;
        Ok(EncodeReport {
            first_node: report.first_node,
            ids: report.ids.into_iter().map(|id| self.ns(id)).collect(),
        })
    }

    fn seal(&self, sink: &dyn BlockSink) -> Result<Vec<BlockId>, AeError> {
        let ns_sink = NsSink {
            inner: sink,
            tag: self.tag,
        };
        let ids = self.code.seal(&ns_sink)?;
        Ok(ids.into_iter().map(|id| self.ns(id)).collect())
    }

    /// Delegates to the wrapped code's snapshot (the lattice write
    /// counter); the namespace tag is structural, not state.
    fn frontier_snapshot(&self) -> Vec<u8> {
        self.code.frontier_snapshot()
    }

    fn restore_frontier(&self, snapshot: &[u8], source: &dyn BlockSource) -> Result<(), AeError> {
        let ns_source = NsSource {
            inner: source,
            tag: self.tag,
        };
        self.code
            .restore_frontier(snapshot, &ns_source)
            .map_err(|e| match e {
                // Surface the id that is actually missing in the shared
                // (namespaced) key space, not the lattice-local one.
                AeError::FrontierBlockMissing { id } => AeError::FrontierBlockMissing {
                    id: ns_apply(self.tag, id),
                },
                other => other,
            })
    }

    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        data_blocks: u64,
    ) -> Result<Block, RepairError> {
        let Some(local) = self.ns_strip(id) else {
            return Err(RepairError::ForeignBlock { id });
        };
        let ns_source = NsSource {
            inner: source,
            tag: self.tag,
        };
        self.code
            .repair_block(&ns_source, local, data_blocks)
            .map_err(|e| ns_apply_err(self.tag, e))
    }

    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
        self.code
            .block_ids(data_blocks)
            .into_iter()
            .map(|id| self.ns(id))
            .collect()
    }

    fn is_repairable(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        let Some(local) = self.ns_strip(id) else {
            return false;
        };
        self.code
            .is_repairable(local, data_blocks, &|q| avail(ns_apply(self.tag, q)))
    }

    fn is_single_failure(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        let Some(local) = self.ns_strip(id) else {
            return false;
        };
        self.code
            .is_single_failure(local, data_blocks, &|q| avail(ns_apply(self.tag, q)))
    }

    fn maintenance_targets(&self, missing_data: &[BlockId], data_blocks: u64) -> Vec<BlockId> {
        let local: Vec<BlockId> = missing_data
            .iter()
            .filter_map(|&id| self.ns_strip(id))
            .collect();
        self.code
            .maintenance_targets(&local, data_blocks)
            .into_iter()
            .map(|id| self.ns(id))
            .collect()
    }

    fn universe_len(&self, data_blocks: u64) -> u64 {
        self.code.universe_len(data_blocks)
    }

    fn dense_index(&self, id: &BlockId, data_blocks: u64) -> Option<u32> {
        self.ns_strip(*id)
            .and_then(|local| self.code.dense_index(&local, data_blocks))
    }

    fn block_at(&self, k: u32, data_blocks: u64) -> Option<BlockId> {
        self.code.block_at(k, data_blocks).map(|id| self.ns(id))
    }

    fn supports_dense_index(&self) -> bool {
        true
    }
}

/// Handle to a backed-up file: which lattice positions hold its blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle {
    /// First lattice position of the file's data blocks.
    pub first_node: u64,
    /// Number of data blocks.
    pub block_count: u64,
    /// Original byte length (the last block is zero-padded).
    pub byte_len: usize,
}

/// Errors from backup operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// A data block was lost locally and no complete pp-tuple was available
    /// remotely to rebuild it.
    Unrecoverable(BlockId),
    /// Underlying store failure.
    Store(StoreError),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::Unrecoverable(id) => write!(f, "no complete repair tuple for {id}"),
            GeoError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for GeoError {}

/// One user's broker plus their view of the cooperative network: the
/// [`GeoLattice`] scheme over a [`TieredStore`] — d-blocks on the user's
/// own machine (the fast tier), p-blocks on the shared remote nodes — with
/// every repair flowing through the scheme's generic
/// [`RedundancyScheme::repair_block`]. All methods take `&self`: both the
/// scheme and the backend are interior-mutable, so brokers can be shared
/// and maintained from worker threads.
pub struct GeoBackup {
    scheme: GeoLattice,
    /// The two-tier backend: tier 1 is the user's own machine holding
    /// d-blocks, tier 2 the remote storage nodes holding p-blocks —
    /// possibly shared with other users' lattices (namespaced keys).
    tiers: TieredStore<DistributedStore>,
}

impl GeoBackup {
    /// Creates a broker entangling `block_size`-byte blocks over
    /// `storage_nodes` remote nodes.
    pub fn new(cfg: Config, block_size: usize, storage_nodes: u32, seed: u64) -> Self {
        Self::with_shared_remote(
            cfg,
            block_size,
            Arc::new(DistributedStore::new(
                storage_nodes,
                Placement::Random { seed },
            )),
            0,
        )
    }

    /// Creates a broker whose parities live on a remote tier shared with
    /// other users; `user` namespaces this lattice's block keys (lattice
    /// positions must stay below 2^48).
    pub fn with_shared_remote(
        cfg: Config,
        block_size: usize,
        remote: Arc<DistributedStore>,
        user: u64,
    ) -> Self {
        GeoBackup {
            scheme: GeoLattice::new(Code::new(cfg, block_size), user),
            tiers: TieredStore::new(remote),
        }
    }

    /// Maps a lattice-local block id into the shared key space.
    fn ns(&self, id: BlockId) -> BlockId {
        self.scheme.ns(id)
    }

    /// The code in use.
    pub fn code(&self) -> &Code {
        self.scheme.code()
    }

    /// The namespaced lattice scheme (geo-node-failure scenarios can run
    /// it through the generic `SchemePlane` and repair planners directly).
    pub fn scheme(&self) -> &GeoLattice {
        &self.scheme
    }

    /// The two-tier backend itself (an [`ae_api::BlockRepo`]; archives can
    /// run directly over it).
    pub fn tiers(&self) -> &TieredStore<DistributedStore> {
        &self.tiers
    }

    /// Remote tier (exposed so tests and examples can fail storage nodes).
    pub fn remote(&self) -> &DistributedStore {
        self.tiers.shared()
    }

    /// Backs up a file: splits it into d-blocks (zero-padding the tail),
    /// entangles the whole file as one batch through the scheme, keeps
    /// d-blocks locally and uploads p-blocks to the remote nodes — the
    /// routing is the [`TieredStore`] itself.
    pub fn backup(&self, file: &[u8]) -> FileHandle {
        let bs = self.scheme.code().block_size();
        let blocks: Vec<Block> = file
            .chunks(bs)
            .map(|chunk| {
                let mut bytes = chunk.to_vec();
                bytes.resize(bs, 0);
                Block::from_vec(bytes)
            })
            .collect();
        let report = self
            .scheme
            .encode_batch(&blocks, &self.tiers)
            .expect("broker blocks are always block_size bytes");
        FileHandle {
            first_node: report.first_node,
            block_count: blocks.len() as u64,
            byte_len: file.len(),
        }
    }

    /// Reads a file back. Missing local blocks are decoded from remote
    /// parities on the fly (a degraded read); the local copy is *not*
    /// modified — use [`Self::repair_local`] to restore it.
    ///
    /// # Errors
    ///
    /// Fails if a block is missing locally and unrecoverable remotely.
    pub fn read(&self, handle: FileHandle) -> Result<Vec<u8>, GeoError> {
        let mut out = Vec::with_capacity(handle.byte_len);
        for i in handle.first_node..handle.first_node + handle.block_count {
            let id = self.ns(BlockId::Data(NodeId(i)));
            let block = match self.tiers.fast().get(id) {
                Ok(b) => b,
                Err(_) => self
                    .decode_remote(i)
                    .ok_or(GeoError::Unrecoverable(BlockId::Data(NodeId(i))))?,
            };
            out.extend_from_slice(block.as_slice());
        }
        out.truncate(handle.byte_len);
        Ok(out)
    }

    /// Simulates local data loss (disk crash, accidental deletion).
    pub fn lose_local(&self, node: u64) {
        self.tiers
            .fast()
            .remove(self.ns(BlockId::Data(NodeId(node))));
    }

    /// Repairs every missing local d-block of a file from remote pp-tuples,
    /// skipping blocks without a complete tuple (they may become repairable
    /// after a [`Self::repair_remote`] round, mirroring the paper's
    /// round-based decoder). Returns the repaired count and the ids still
    /// missing.
    pub fn repair_local(&self, handle: FileHandle) -> (u64, Vec<BlockId>) {
        let mut repaired = 0;
        let mut unrecovered = Vec::new();
        for i in handle.first_node..handle.first_node + handle.block_count {
            let id = self.ns(BlockId::Data(NodeId(i)));
            if self.tiers.fast().contains(id) {
                continue;
            }
            match self.decode_remote(i) {
                Some(block) => {
                    self.tiers.fast().put(id, block);
                    repaired += 1;
                }
                None => unrecovered.push(BlockId::Data(NodeId(i))),
            }
        }
        (repaired, unrecovered)
    }

    /// Regenerates p-blocks lost to failed storage nodes (the Table III
    /// flow) and re-homes them on available nodes. Blocks whose tuples are
    /// incomplete are skipped; returns how many parities were regenerated.
    pub fn repair_remote(&self) -> u64 {
        let max_node = self.scheme.data_written();
        let mut repaired = 0;
        // Walk every parity the lattice should hold; regenerate missing
        // ones from the dp-tuples that survive, through the scheme.
        for i in 1..=max_node {
            for &class in self.scheme.code().config().classes() {
                let id = self.ns(BlockId::Parity(EdgeId::new(class, NodeId(i))));
                if self.remote().contains(id) {
                    continue;
                }
                if let Ok(block) = self.scheme.repair_block(&self.tiers, id, max_node) {
                    if self.remote().put_rehomed(id, block).is_some() {
                        repaired += 1;
                    }
                }
            }
        }
        repaired
    }

    /// Decodes data block `i` through the scheme (the broker lost its
    /// local copy): one XOR of two fetched p-blocks when a pp-tuple is
    /// complete.
    fn decode_remote(&self, i: u64) -> Option<Block> {
        let id = self.ns(BlockId::Data(NodeId(i)));
        self.scheme
            .repair_block(&self.tiers, id, self.scheme.data_written())
            .ok()
    }
}

/// A cooperative community: several users' entanglement lattices coexisting
/// on one shared tier of storage nodes (§IV.A: "multiple lattices coexist
/// in the system … the system could keep lattices with different
/// settings").
///
/// Each user gets a namespaced key range, so lattices never collide, and
/// any member can run maintenance for the whole community ("If a node is
/// not able to repair the lattice, other nodes can do repairs on their
/// behalf as well").
pub struct Community {
    remote: Arc<DistributedStore>,
    users: Vec<GeoBackup>,
}

impl Community {
    /// Creates a community of brokers over `storage_nodes` shared nodes;
    /// `configs[i]` is user i's code (lattices may differ per user).
    pub fn new(configs: &[Config], block_size: usize, storage_nodes: u32, seed: u64) -> Self {
        let remote = Arc::new(DistributedStore::new(
            storage_nodes,
            Placement::Random { seed },
        ));
        let users = configs
            .iter()
            .enumerate()
            .map(|(u, &cfg)| {
                GeoBackup::with_shared_remote(cfg, block_size, Arc::clone(&remote), u as u64 + 1)
            })
            .collect();
        Community { remote, users }
    }

    /// Number of member users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the community has no members.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The shared remote tier.
    pub fn remote(&self) -> &Arc<DistributedStore> {
        &self.remote
    }

    /// Borrows user `u`'s broker.
    pub fn user(&self, u: usize) -> &GeoBackup {
        &self.users[u]
    }

    /// Community-wide maintenance: every member regenerates the parities of
    /// every lattice it can (its own and, altruistically, the others').
    /// Returns total parities regenerated.
    ///
    /// Maintenance fans out per user across [`ae_api::repair_threads`]
    /// scoped threads with the same contiguous-chunk /
    /// deterministic-chunk-order-merge pattern as the repair planners —
    /// sound because each user's lattice occupies a disjoint namespaced id
    /// range of the shared tier, and re-homing probes depend only on
    /// cluster availability, never on the other users' writes. The
    /// `serial-repair` feature (via `repair_threads() == 1`) pins it to the
    /// sequential walk, and `AE_REPAIR_THREADS` overrides the width.
    pub fn maintain_all(&self) -> u64 {
        let threads = ae_api::repair_threads().min(self.users.len());
        ae_api::par::par_chunks(&self.users, threads, 2, |chunk| {
            chunk.iter().map(GeoBackup::repair_remote).collect()
        })
        .into_iter()
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
    }

    fn backup_one(cfg: Config, file_len: usize) -> (GeoBackup, FileHandle, Vec<u8>) {
        let geo = GeoBackup::new(cfg, 64, 20, 3);
        let file = sample_file(file_len);
        let handle = geo.backup(&file);
        (geo, handle, file)
    }

    #[test]
    fn geo_frontier_restores_through_the_namespace() {
        use ae_api::BlockMap;

        let cfg = Config::new(3, 2, 5).unwrap();
        let geo = GeoLattice::new(ae_core::Code::new(cfg, 16), 3);
        let store = BlockMap::new();
        let blocks: Vec<Block> = (0..30u8).map(|k| Block::from_vec(vec![k; 16])).collect();
        geo.encode_batch(&blocks, &store).unwrap();
        let snap = geo.frontier_snapshot();

        let resumed = GeoLattice::new(ae_core::Code::new(cfg, 16), 3);
        resumed.restore_frontier(&snap, &store).unwrap();
        assert_eq!(resumed.data_written(), 30);
        let (a, b) = (BlockMap::new(), BlockMap::new());
        let more: Vec<Block> = (30..40u8).map(|k| Block::from_vec(vec![k; 16])).collect();
        geo.encode_batch(&more, &a).unwrap();
        resumed.encode_batch(&more, &b).unwrap();
        assert_eq!(a, b, "namespaced continuation is bit-identical");

        // A missing frontier parity is named in the *namespaced* id space.
        let frontier = geo.ns(BlockId::Parity(EdgeId::new(
            ae_blocks::StrandClass::Horizontal,
            NodeId(30),
        )));
        store.remove(&frontier);
        let broken = GeoLattice::new(ae_core::Code::new(cfg, 16), 3);
        let err = broken.restore_frontier(&snap, &store).unwrap_err();
        assert!(
            matches!(err, AeError::FrontierBlockMissing { id } if id == frontier),
            "{err}"
        );
    }

    #[test]
    fn backup_and_read_roundtrip() {
        let (geo, handle, file) = backup_one(Config::new(3, 2, 5).unwrap(), 1000);
        assert_eq!(
            handle.block_count, 16,
            "1000 bytes / 64-byte blocks, padded"
        );
        assert_eq!(geo.read(handle).unwrap(), file);
    }

    #[test]
    fn degraded_read_after_local_loss() {
        let (geo, handle, file) = backup_one(Config::new(3, 2, 5).unwrap(), 640);
        geo.lose_local(handle.first_node + 3);
        geo.lose_local(handle.first_node + 7);
        assert_eq!(geo.read(handle).unwrap(), file, "read decodes remotely");
        // Local copies are still missing until an explicit repair.
        let (repaired, unrecovered) = geo.repair_local(handle);
        assert_eq!((repaired, unrecovered.len()), (2, 0));
        assert_eq!(geo.repair_local(handle).0, 0, "idempotent");
    }

    #[test]
    fn repairs_survive_storage_node_failures() {
        let (geo, handle, file) = backup_one(Config::new(3, 2, 5).unwrap(), 2000);
        // Fail some remote nodes and lose ALL local data; repair in rounds,
        // regenerating reachable parities between data passes (the paper's
        // round-based decoding).
        geo.remote().with_cluster(|c| {
            for l in [1, 5, 9] {
                c.fail(crate::cluster::LocationId(l));
            }
        });
        for k in 0..handle.block_count {
            geo.lose_local(handle.first_node + k);
        }
        for round in 0..10 {
            let (_, unrecovered) = geo.repair_local(handle);
            if unrecovered.is_empty() {
                break;
            }
            let regenerated = geo.repair_remote();
            assert!(regenerated > 0 || round > 0, "no progress: {unrecovered:?}");
        }
        assert_eq!(geo.read(handle).unwrap(), file);
    }

    #[test]
    fn remote_parity_regeneration() {
        let (geo, _, _) = backup_one(Config::new(2, 2, 2).unwrap(), 1280);
        // Knock out one storage node for good: its parities are lost.
        let lost_loc = crate::cluster::LocationId(4);
        let lost: Vec<_> = geo.remote().blocks_at(lost_loc);
        for id in &lost {
            geo.remote().remove(*id);
        }
        assert!(!lost.is_empty(), "test requires some parities at n4");
        let regenerated = geo.repair_remote();
        assert_eq!(regenerated as usize, lost.len());
        for id in &lost {
            assert!(geo.remote().contains(*id), "{id} regenerated");
        }
    }

    #[test]
    fn multiple_files_share_one_lattice() {
        let geo = GeoBackup::new(Config::new(2, 1, 2).unwrap(), 32, 10, 1);
        let f1 = sample_file(100);
        let f2 = sample_file(300);
        let h1 = geo.backup(&f1);
        let h2 = geo.backup(&f2);
        assert_eq!(h2.first_node, h1.first_node + h1.block_count);
        assert_eq!(geo.read(h1).unwrap(), f1);
        assert_eq!(geo.read(h2).unwrap(), f2);
    }

    #[test]
    fn unrecoverable_loss_is_reported() {
        let (geo, handle, _) = backup_one(Config::new(2, 1, 1).unwrap(), 320);
        // Lose a local block AND all remote nodes.
        geo.lose_local(handle.first_node + 2);
        geo.remote().with_cluster(|c| {
            for l in 0..20 {
                c.fail(crate::cluster::LocationId(l));
            }
        });
        assert!(matches!(geo.read(handle), Err(GeoError::Unrecoverable(_))));
    }

    #[test]
    fn community_lattices_do_not_collide() {
        let configs = [Config::new(3, 2, 5).unwrap(), Config::new(2, 1, 2).unwrap()];
        let com = Community::new(&configs, 64, 25, 11);
        assert_eq!(com.len(), 2);
        assert!(!com.is_empty());
        let f0 = sample_file(500);
        let f1: Vec<u8> = sample_file(500).iter().map(|b| b ^ 0xFF).collect();
        let h0 = com.user(0).backup(&f0);
        let h1 = com.user(1).backup(&f1);
        // Same lattice positions, different users: contents must not mix.
        assert_eq!(h0.first_node, h1.first_node);
        assert_eq!(com.user(0).read(h0).unwrap(), f0);
        assert_eq!(com.user(1).read(h1).unwrap(), f1);
    }

    #[test]
    fn community_survives_shared_tier_failures() {
        let configs = [Config::new(3, 2, 5).unwrap(), Config::new(3, 2, 5).unwrap()];
        let com = Community::new(&configs, 64, 25, 13);
        let files: Vec<Vec<u8>> = (0..2).map(|k| sample_file(800 + k * 64)).collect();
        let handles: Vec<FileHandle> = files
            .iter()
            .enumerate()
            .map(|(u, f)| com.user(u).backup(f))
            .collect();
        // Fail a slice of the shared tier; both users lose some local data.
        com.remote().with_cluster(|c| {
            for l in [0, 5, 10, 15] {
                c.fail(crate::cluster::LocationId(l));
            }
        });
        for (u, h) in handles.iter().enumerate() {
            com.user(u).lose_local(h.first_node + 2);
            com.user(u).lose_local(h.first_node + 5);
        }
        // Community-wide maintenance re-homes what it can, then each user
        // repairs locally.
        com.maintain_all();
        for (u, h) in handles.iter().enumerate() {
            let (_, missing) = com.user(u).repair_local(*h);
            assert!(missing.is_empty(), "user {u}: {missing:?}");
            assert_eq!(com.user(u).read(*h).unwrap(), files[u]);
        }
    }

    /// The fanned-out community maintenance must regenerate exactly the
    /// same parities onto exactly the same re-homed locations as the
    /// reference serial walk — the deterministic-merge guarantee.
    #[test]
    fn parallel_maintenance_matches_serial_walk() {
        let build = || {
            let configs = [
                Config::new(3, 2, 5).unwrap(),
                Config::new(2, 2, 5).unwrap(),
                Config::new(2, 1, 2).unwrap(),
                Config::new(3, 2, 5).unwrap(),
            ];
            let com = Community::new(&configs, 32, 15, 41);
            for u in 0..com.len() {
                com.user(u).backup(&sample_file(700 + u * 96));
            }
            // Fail a third of the shared tier: many parities to regenerate.
            com.remote().with_cluster(|c| {
                for l in [0, 3, 6, 9, 12] {
                    c.fail(crate::cluster::LocationId(l));
                }
            });
            for l in [0u32, 3, 6, 9, 12] {
                for id in com.remote().blocks_at(crate::cluster::LocationId(l)) {
                    com.remote().remove(id);
                }
            }
            com
        };
        let parallel = build();
        let serial = build();
        let total_parallel = parallel.maintain_all();
        // Reference: the strictly sequential per-user walk.
        let total_serial: u64 = serial.users.iter().map(GeoBackup::repair_remote).sum();
        assert_eq!(total_parallel, total_serial);
        assert!(total_parallel > 0, "the disaster must cost something");
        // Block-for-block identical shared tier afterwards, including
        // re-homed locations.
        for l in 0..15u32 {
            let loc = crate::cluster::LocationId(l);
            let mut a = parallel.remote().blocks_at(loc);
            let mut b = serial.remote().blocks_at(loc);
            a.sort();
            b.sort();
            assert_eq!(a, b, "location {l}");
        }
    }

    /// The scheme-driven repair path must agree, block for block, with
    /// the direct decoder calls the broker used to make (`repair_node` /
    /// `repair_edge` against the two tiers).
    #[test]
    fn scheme_repairs_match_legacy_decoder_path() {
        use ae_core::decoder;
        for damage_seed in 0u64..8 {
            let geo = GeoBackup::with_shared_remote(
                Config::new(2, 2, 5).unwrap(),
                32,
                Arc::new(DistributedStore::new(20, Placement::Random { seed: 3 })),
                4,
            );
            let file = sample_file(1200);
            let handle = geo.backup(&file);
            // Correlated damage: fail a couple of storage nodes and lose a
            // pseudo-random subset of the local tier.
            geo.remote().with_cluster(|c| {
                c.fail(crate::cluster::LocationId((damage_seed % 20) as u32));
                c.fail(crate::cluster::LocationId(((damage_seed + 7) % 20) as u32));
            });
            let mut state = damage_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for k in 0..handle.block_count {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33) % 100 < 40 {
                    geo.lose_local(handle.first_node + k);
                }
            }
            let written = geo.scheme().data_written();
            let cfg = *geo.code().config();
            let zero = geo.code().zero_block().clone();
            // Every data block and parity: the generic scheme path and
            // the legacy direct decoder must agree on repairability and
            // bytes.
            let tag = |id| geo.ns(id);
            let mut legacy_lookup = |q: BlockId| match q {
                BlockId::Data(_) => geo.tiers().fast().get(tag(q)).ok(),
                BlockId::Parity(_) => geo.remote().get(tag(q)).ok(),
                _ => None,
            };
            for i in handle.first_node..handle.first_node + handle.block_count {
                let legacy = decoder::repair_node(&cfg, i, &zero, &mut legacy_lookup)
                    .ok()
                    .map(|r| r.block);
                let via_scheme = geo
                    .scheme()
                    .repair_block(geo.tiers(), geo.ns(BlockId::Data(NodeId(i))), written)
                    .ok();
                assert_eq!(via_scheme, legacy, "seed {damage_seed}: d{i}");
            }
            for i in 1..=written {
                for &class in cfg.classes() {
                    let edge = EdgeId::new(class, NodeId(i));
                    let legacy =
                        decoder::repair_edge(&cfg, edge, written, &zero, &mut legacy_lookup)
                            .ok()
                            .map(|r| r.block);
                    let via_scheme = geo
                        .scheme()
                        .repair_block(geo.tiers(), geo.ns(BlockId::Parity(edge)), written)
                        .ok();
                    assert_eq!(via_scheme, legacy, "seed {damage_seed}: {edge:?}");
                }
            }
        }
    }

    #[test]
    fn geo_lattice_namespaces_the_whole_universe() {
        let cfg = Config::new(2, 2, 5).unwrap();
        let a = GeoLattice::new(Code::new(cfg, 0), 1);
        let b = GeoLattice::new(Code::new(cfg, 0), 2);
        let ids_a: std::collections::HashSet<BlockId> = a.block_ids(50).into_iter().collect();
        let ids_b: std::collections::HashSet<BlockId> = b.block_ids(50).into_iter().collect();
        assert!(ids_a.is_disjoint(&ids_b), "namespaces must not collide");
        // Each scheme only answers for its own namespace.
        for id in ids_a.iter().take(5) {
            assert!(a.dense_index(id, 50).is_some());
            assert_eq!(b.dense_index(id, 50), None);
        }
    }

    #[test]
    fn geo_lattice_bijection_matches_enumeration() {
        let cfg = Config::new(3, 2, 5).unwrap();
        let scheme = GeoLattice::new(Code::new(cfg, 0), 7);
        assert!(scheme.supports_dense_index());
        let n = 40;
        let ids = scheme.block_ids(n);
        assert_eq!(scheme.universe_len(n), ids.len() as u64);
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(scheme.dense_index(id, n), Some(k as u32), "{id}");
            assert_eq!(scheme.block_at(k as u32, n), Some(*id), "{k}");
        }
        assert_eq!(scheme.block_at(ids.len() as u32, n), None);
        // Un-namespaced ids are foreign to a tagged lattice.
        assert_eq!(scheme.dense_index(&BlockId::Data(NodeId(1)), n), None);
        assert!(!scheme.is_repairable(BlockId::Data(NodeId(1)), n, &|_| true));
    }

    #[test]
    fn geo_lattice_repair_errors_stay_namespaced() {
        let cfg = Config::new(2, 2, 5).unwrap();
        let scheme = GeoLattice::new(Code::new(cfg, 16), 3);
        let store = ae_api::BlockMap::new();
        let blocks: Vec<Block> = (0..30u8).map(|k| Block::from_vec(vec![k; 16])).collect();
        let report = scheme.encode_batch(&blocks, &store).unwrap();
        // Every stored id carries the namespace.
        for id in &report.ids {
            assert!(scheme.ns_strip(*id).is_some(), "{id}");
        }
        let victim = report.ids[0];
        let original = store.remove(&victim).unwrap();
        assert_eq!(scheme.repair_block(&store, victim, 30).unwrap(), original);
        // On an empty store the error names namespaced blockers only.
        let err = scheme
            .repair_block(&ae_api::BlockMap::new(), victim, 30)
            .unwrap_err();
        assert!(!err.missing_blocks().is_empty());
        for m in err.missing_blocks() {
            assert!(scheme.ns_strip(*m).is_some(), "{m} must stay namespaced");
        }
    }
}
