//! Use case A: a geo-replicated cooperative backup (§IV.A).
//!
//! A community shares storage: "Users keep their own data in their local
//! computers (nodes) and upload redundant information to geographically
//! distributed nodes." The lower tier is storage nodes holding p-blocks for
//! others; the upper tier is broker nodes that encode and decode. Here one
//! [`GeoBackup`] is a user's broker: it entangles local files, pushes the
//! parities to a [`DistributedStore`] of remote nodes, and repairs local
//! data loss from complete pp-tuples fetched remotely — following the
//! Table III steps (obtain tuple ids → choose p-block → locate → get →
//! repair).

use crate::distributed::DistributedStore;
use crate::placement::Placement;
use crate::store::{BlockStore, MemStore, StoreError};
use ae_api::{BlockSink, RedundancyScheme};
use ae_blocks::{Block, BlockId, EdgeId, NodeId};
use ae_core::{decoder, Code};
use ae_lattice::Config;
use std::fmt;
use std::sync::Arc;

/// High bits used to namespace one user's lattice within a shared remote
/// tier: multiple lattices coexist in the system (§IV.A), so block keys are
/// "derived from the node id and the block position in the lattice".
const NS_SHIFT: u32 = 48;

/// Applies a namespace tag to a lattice-local block id.
fn ns_apply(tag: u64, id: BlockId) -> BlockId {
    match id {
        BlockId::Data(NodeId(i)) => BlockId::Data(NodeId(i | tag)),
        BlockId::Parity(EdgeId { class, left }) => {
            BlockId::Parity(EdgeId::new(class, NodeId(left.0 | tag)))
        }
        other => other,
    }
}

/// Handle to a backed-up file: which lattice positions hold its blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle {
    /// First lattice position of the file's data blocks.
    pub first_node: u64,
    /// Number of data blocks.
    pub block_count: u64,
    /// Original byte length (the last block is zero-padded).
    pub byte_len: usize,
}

/// Errors from backup operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// A data block was lost locally and no complete pp-tuple was available
    /// remotely to rebuild it.
    Unrecoverable(BlockId),
    /// Underlying store failure.
    Store(StoreError),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::Unrecoverable(id) => write!(f, "no complete repair tuple for {id}"),
            GeoError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for GeoError {}

/// One user's broker plus their view of the cooperative network.
pub struct GeoBackup {
    code: Code,
    /// Tier 1: the user's own machine, holding d-blocks.
    local: MemStore,
    /// Tier 2: remote storage nodes, holding p-blocks — possibly shared
    /// with other users' lattices.
    remote: Arc<DistributedStore>,
    /// This user's namespace tag within the shared tier.
    user: u64,
}

/// Write-side routing for a broker: data blocks stay on the local tier,
/// parities go to the (namespaced) remote tier — the §IV.A two-tier split,
/// expressed as a [`BlockSink`] so the batch encoder streams straight
/// through it.
struct TierSink<'a> {
    local: &'a MemStore,
    remote: &'a DistributedStore,
    ns_tag: u64,
}

impl BlockSink for TierSink<'_> {
    fn store(&mut self, id: BlockId, block: Block) {
        match id {
            BlockId::Data(_) => self.local.put(id, block),
            _ => self.remote.put(ns_apply(self.ns_tag, id), block),
        }
    }
}

impl GeoBackup {
    /// Creates a broker entangling `block_size`-byte blocks over
    /// `storage_nodes` remote nodes.
    pub fn new(cfg: Config, block_size: usize, storage_nodes: u32, seed: u64) -> Self {
        Self::with_shared_remote(
            cfg,
            block_size,
            Arc::new(DistributedStore::new(
                storage_nodes,
                Placement::Random { seed },
            )),
            0,
        )
    }

    /// Creates a broker whose parities live on a remote tier shared with
    /// other users; `user` namespaces this lattice's block keys (lattice
    /// positions must stay below 2^48).
    pub fn with_shared_remote(
        cfg: Config,
        block_size: usize,
        remote: Arc<DistributedStore>,
        user: u64,
    ) -> Self {
        GeoBackup {
            code: Code::new(cfg, block_size),
            local: MemStore::new(),
            remote,
            user,
        }
    }

    /// Maps a lattice-local block id into the shared key space.
    fn ns(&self, id: BlockId) -> BlockId {
        ns_apply(self.user << NS_SHIFT, id)
    }

    /// The code in use.
    pub fn code(&self) -> &Code {
        &self.code
    }

    /// Remote tier (exposed so tests and examples can fail storage nodes).
    pub fn remote(&self) -> &DistributedStore {
        &self.remote
    }

    /// Backs up a file: splits it into d-blocks (zero-padding the tail),
    /// entangles the whole file as one batch, keeps d-blocks locally and
    /// uploads p-blocks to the remote nodes.
    pub fn backup(&mut self, file: &[u8]) -> FileHandle {
        let bs = self.code.block_size();
        let blocks: Vec<Block> = file
            .chunks(bs)
            .map(|chunk| {
                let mut bytes = chunk.to_vec();
                bytes.resize(bs, 0);
                Block::from_vec(bytes)
            })
            .collect();
        let mut sink = TierSink {
            local: &self.local,
            remote: &self.remote,
            ns_tag: self.user << NS_SHIFT,
        };
        let report = self
            .code
            .encode_batch(&blocks, &mut sink)
            .expect("broker blocks are always block_size bytes");
        FileHandle {
            first_node: report.first_node,
            block_count: blocks.len() as u64,
            byte_len: file.len(),
        }
    }

    /// Reads a file back. Missing local blocks are decoded from remote
    /// parities on the fly (a degraded read); the local copy is *not*
    /// modified — use [`Self::repair_local`] to restore it.
    ///
    /// # Errors
    ///
    /// Fails if a block is missing locally and unrecoverable remotely.
    pub fn read(&self, handle: FileHandle) -> Result<Vec<u8>, GeoError> {
        let mut out = Vec::with_capacity(handle.byte_len);
        for i in handle.first_node..handle.first_node + handle.block_count {
            let id = BlockId::Data(NodeId(i));
            let block = match self.local.get(id) {
                Ok(b) => b,
                Err(_) => self.decode_remote(i).ok_or(GeoError::Unrecoverable(id))?,
            };
            out.extend_from_slice(block.as_slice());
        }
        out.truncate(handle.byte_len);
        Ok(out)
    }

    /// Simulates local data loss (disk crash, accidental deletion).
    pub fn lose_local(&mut self, node: u64) {
        self.local.remove(BlockId::Data(NodeId(node)));
    }

    /// Repairs every missing local d-block of a file from remote pp-tuples,
    /// skipping blocks without a complete tuple (they may become repairable
    /// after a [`Self::repair_remote`] round, mirroring the paper's
    /// round-based decoder). Returns the repaired count and the ids still
    /// missing.
    pub fn repair_local(&mut self, handle: FileHandle) -> (u64, Vec<BlockId>) {
        let mut repaired = 0;
        let mut unrecovered = Vec::new();
        for i in handle.first_node..handle.first_node + handle.block_count {
            let id = BlockId::Data(NodeId(i));
            if self.local.contains(id) {
                continue;
            }
            match self.decode_remote(i) {
                Some(block) => {
                    self.local.put(id, block);
                    repaired += 1;
                }
                None => unrecovered.push(id),
            }
        }
        (repaired, unrecovered)
    }

    /// Regenerates p-blocks lost to failed storage nodes (the Table III
    /// flow) and re-homes them on available nodes. Blocks whose tuples are
    /// incomplete are skipped; returns how many parities were regenerated.
    pub fn repair_remote(&self) -> u64 {
        let max_node = self.code.written();
        let zero = self.code.zero_block().clone();
        let mut repaired = 0;
        // Walk every parity the lattice should hold; regenerate missing
        // ones from the dp-tuples that survive.
        for i in 1..=max_node {
            for &class in self.code.config().classes() {
                let edge = ae_blocks::EdgeId::new(class, NodeId(i));
                let id = BlockId::Parity(edge);
                if self.remote.contains(self.ns(id)) {
                    continue;
                }
                let mut lookup = |q: BlockId| match q {
                    BlockId::Data(_) => self.local.get(q).ok(),
                    BlockId::Parity(_) => self.remote.get(self.ns(q)).ok(),
                    _ => None,
                };
                if let Ok(r) =
                    decoder::repair_edge(self.code.config(), edge, max_node, &zero, &mut lookup)
                {
                    if self.remote.put_rehomed(self.ns(id), r.block).is_some() {
                        repaired += 1;
                    }
                }
            }
        }
        repaired
    }

    /// Decodes data block `i` from remote parities only (the broker lost its
    /// local copy). One XOR of two fetched p-blocks when a pp-tuple is
    /// complete.
    fn decode_remote(&self, i: u64) -> Option<Block> {
        let mut lookup = |q: BlockId| match q {
            // Only parities live remotely; other data blocks may also be
            // gone, so never rely on them here.
            BlockId::Parity(_) => self.remote.get(self.ns(q)).ok(),
            BlockId::Data(_) => self.local.get(q).ok(),
            _ => None,
        };
        decoder::repair_node(self.code.config(), i, self.code.zero_block(), &mut lookup)
            .ok()
            .map(|r| r.block)
    }
}

/// A cooperative community: several users' entanglement lattices coexisting
/// on one shared tier of storage nodes (§IV.A: "multiple lattices coexist
/// in the system … the system could keep lattices with different
/// settings").
///
/// Each user gets a namespaced key range, so lattices never collide, and
/// any member can run maintenance for the whole community ("If a node is
/// not able to repair the lattice, other nodes can do repairs on their
/// behalf as well").
pub struct Community {
    remote: Arc<DistributedStore>,
    users: Vec<GeoBackup>,
}

impl Community {
    /// Creates a community of brokers over `storage_nodes` shared nodes;
    /// `configs[i]` is user i's code (lattices may differ per user).
    pub fn new(configs: &[Config], block_size: usize, storage_nodes: u32, seed: u64) -> Self {
        let remote = Arc::new(DistributedStore::new(
            storage_nodes,
            Placement::Random { seed },
        ));
        let users = configs
            .iter()
            .enumerate()
            .map(|(u, &cfg)| {
                GeoBackup::with_shared_remote(cfg, block_size, Arc::clone(&remote), u as u64 + 1)
            })
            .collect();
        Community { remote, users }
    }

    /// Number of member users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the community has no members.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The shared remote tier.
    pub fn remote(&self) -> &Arc<DistributedStore> {
        &self.remote
    }

    /// Borrows user `u`'s broker.
    pub fn user(&self, u: usize) -> &GeoBackup {
        &self.users[u]
    }

    /// Mutably borrows user `u`'s broker.
    pub fn user_mut(&mut self, u: usize) -> &mut GeoBackup {
        &mut self.users[u]
    }

    /// Community-wide maintenance: every member regenerates the parities of
    /// every lattice it can (its own and, altruistically, the others').
    /// Returns total parities regenerated.
    pub fn maintain_all(&self) -> u64 {
        self.users.iter().map(GeoBackup::repair_remote).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
    }

    fn backup_one(cfg: Config, file_len: usize) -> (GeoBackup, FileHandle, Vec<u8>) {
        let mut geo = GeoBackup::new(cfg, 64, 20, 3);
        let file = sample_file(file_len);
        let handle = geo.backup(&file);
        (geo, handle, file)
    }

    #[test]
    fn backup_and_read_roundtrip() {
        let (geo, handle, file) = backup_one(Config::new(3, 2, 5).unwrap(), 1000);
        assert_eq!(
            handle.block_count, 16,
            "1000 bytes / 64-byte blocks, padded"
        );
        assert_eq!(geo.read(handle).unwrap(), file);
    }

    #[test]
    fn degraded_read_after_local_loss() {
        let (mut geo, handle, file) = backup_one(Config::new(3, 2, 5).unwrap(), 640);
        geo.lose_local(handle.first_node + 3);
        geo.lose_local(handle.first_node + 7);
        assert_eq!(geo.read(handle).unwrap(), file, "read decodes remotely");
        // Local copies are still missing until an explicit repair.
        let (repaired, unrecovered) = geo.repair_local(handle);
        assert_eq!((repaired, unrecovered.len()), (2, 0));
        assert_eq!(geo.repair_local(handle).0, 0, "idempotent");
    }

    #[test]
    fn repairs_survive_storage_node_failures() {
        let (mut geo, handle, file) = backup_one(Config::new(3, 2, 5).unwrap(), 2000);
        // Fail some remote nodes and lose ALL local data; repair in rounds,
        // regenerating reachable parities between data passes (the paper's
        // round-based decoding).
        geo.remote().with_cluster(|c| {
            for l in [1, 5, 9] {
                c.fail(crate::cluster::LocationId(l));
            }
        });
        for k in 0..handle.block_count {
            geo.lose_local(handle.first_node + k);
        }
        for round in 0..10 {
            let (_, unrecovered) = geo.repair_local(handle);
            if unrecovered.is_empty() {
                break;
            }
            let regenerated = geo.repair_remote();
            assert!(regenerated > 0 || round > 0, "no progress: {unrecovered:?}");
        }
        assert_eq!(geo.read(handle).unwrap(), file);
    }

    #[test]
    fn remote_parity_regeneration() {
        let (geo, _, _) = backup_one(Config::new(2, 2, 2).unwrap(), 1280);
        // Knock out one storage node for good: its parities are lost.
        let lost_loc = crate::cluster::LocationId(4);
        let lost: Vec<_> = geo.remote().blocks_at(lost_loc);
        for id in &lost {
            geo.remote().remove(*id);
        }
        assert!(!lost.is_empty(), "test requires some parities at n4");
        let regenerated = geo.repair_remote();
        assert_eq!(regenerated as usize, lost.len());
        for id in &lost {
            assert!(geo.remote().contains(*id), "{id} regenerated");
        }
    }

    #[test]
    fn multiple_files_share_one_lattice() {
        let mut geo = GeoBackup::new(Config::new(2, 1, 2).unwrap(), 32, 10, 1);
        let f1 = sample_file(100);
        let f2 = sample_file(300);
        let h1 = geo.backup(&f1);
        let h2 = geo.backup(&f2);
        assert_eq!(h2.first_node, h1.first_node + h1.block_count);
        assert_eq!(geo.read(h1).unwrap(), f1);
        assert_eq!(geo.read(h2).unwrap(), f2);
    }

    #[test]
    fn unrecoverable_loss_is_reported() {
        let (mut geo, handle, _) = backup_one(Config::new(2, 1, 1).unwrap(), 320);
        // Lose a local block AND all remote nodes.
        geo.lose_local(handle.first_node + 2);
        geo.remote().with_cluster(|c| {
            for l in 0..20 {
                c.fail(crate::cluster::LocationId(l));
            }
        });
        assert!(matches!(geo.read(handle), Err(GeoError::Unrecoverable(_))));
    }

    #[test]
    fn community_lattices_do_not_collide() {
        let configs = [Config::new(3, 2, 5).unwrap(), Config::new(2, 1, 2).unwrap()];
        let mut com = Community::new(&configs, 64, 25, 11);
        assert_eq!(com.len(), 2);
        assert!(!com.is_empty());
        let f0 = sample_file(500);
        let f1: Vec<u8> = sample_file(500).iter().map(|b| b ^ 0xFF).collect();
        let h0 = com.user_mut(0).backup(&f0);
        let h1 = com.user_mut(1).backup(&f1);
        // Same lattice positions, different users: contents must not mix.
        assert_eq!(h0.first_node, h1.first_node);
        assert_eq!(com.user(0).read(h0).unwrap(), f0);
        assert_eq!(com.user(1).read(h1).unwrap(), f1);
    }

    #[test]
    fn community_survives_shared_tier_failures() {
        let configs = [Config::new(3, 2, 5).unwrap(), Config::new(3, 2, 5).unwrap()];
        let mut com = Community::new(&configs, 64, 25, 13);
        let files: Vec<Vec<u8>> = (0..2).map(|k| sample_file(800 + k * 64)).collect();
        let handles: Vec<FileHandle> = files
            .iter()
            .enumerate()
            .map(|(u, f)| com.user_mut(u).backup(f))
            .collect();
        // Fail a slice of the shared tier; both users lose some local data.
        com.remote().with_cluster(|c| {
            for l in [0, 5, 10, 15] {
                c.fail(crate::cluster::LocationId(l));
            }
        });
        for (u, h) in handles.iter().enumerate() {
            com.user_mut(u).lose_local(h.first_node + 2);
            com.user_mut(u).lose_local(h.first_node + 5);
        }
        // Community-wide maintenance re-homes what it can, then each user
        // repairs locally.
        com.maintain_all();
        for (u, h) in handles.iter().enumerate() {
            let (_, missing) = com.user_mut(u).repair_local(*h);
            assert!(missing.is_empty(), "user {u}: {missing:?}");
            assert_eq!(com.user(u).read(*h).unwrap(), files[u]);
        }
    }
}
