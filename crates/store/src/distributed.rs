//! A block store sharded over cluster locations.
//!
//! Combines a [`MemStore`] per location with a [`Placement`] policy and a
//! [`Cluster`]: reads fail while the block's location is unavailable, which
//! is precisely the failure model of the paper's evaluation (a location
//! failure makes every block placed there unavailable at once).

use crate::cluster::{Cluster, LocationId};
use crate::placement::{PlaceBlocks, Placement};
use crate::store::{MemStore, StoreError};
use ae_blocks::{Block, BlockId};
use parking_lot::RwLock;

/// A distributed block store with location-grained failures.
#[derive(Debug)]
pub struct DistributedStore {
    shards: Vec<MemStore>,
    placement: Placement,
    cluster: RwLock<Cluster>,
    /// Re-homed blocks: repairs place regenerated blocks on *available*
    /// locations, overriding the deterministic placement.
    overrides: RwLock<std::collections::HashMap<BlockId, LocationId>>,
}

impl DistributedStore {
    /// Creates a store over `n` locations with the given placement policy.
    pub fn new(n: u32, placement: Placement) -> Self {
        DistributedStore {
            shards: (0..n).map(|_| MemStore::new()).collect(),
            placement,
            cluster: RwLock::new(Cluster::new(n)),
            overrides: RwLock::new(std::collections::HashMap::new()),
        }
    }

    /// Number of locations.
    pub fn locations(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The location a block maps to (honouring any re-homing override).
    pub fn location_of(&self, id: BlockId) -> LocationId {
        if let Some(&loc) = self.overrides.read().get(&id) {
            return loc;
        }
        self.placement.place(id, self.locations())
    }

    /// Stores a block on an explicit *available* location, recording the
    /// override so later reads find it there. Used by repair flows to
    /// re-home blocks whose original location died. Returns the chosen
    /// location, or `None` when no location is available.
    pub fn put_rehomed(&self, id: BlockId, block: Block) -> Option<LocationId> {
        let target = {
            let cluster = self.cluster.read();
            // Deterministic probe from the block's home location.
            let n = self.locations();
            let home = self.placement.place(id, n).0;
            (0..n)
                .map(|k| LocationId((home + k) % n))
                .find(|&l| cluster.is_available(l))
        }?;
        // Drop the stale copy (if any) before re-homing.
        let old = self.location_of(id);
        self.shards[old.0 as usize].remove(id);
        self.shards[target.0 as usize].put(id, block);
        self.overrides.write().insert(id, target);
        Some(target)
    }

    /// Runs `f` against the cluster state (fail/restore locations).
    pub fn with_cluster<T>(&self, f: impl FnOnce(&mut Cluster) -> T) -> T {
        f(&mut self.cluster.write())
    }

    /// Whether the block's location is currently reachable.
    pub fn location_available(&self, id: BlockId) -> bool {
        self.cluster.read().is_available(self.location_of(id))
    }

    /// Blocks held at one location (snapshot), regardless of availability.
    pub fn blocks_at(&self, loc: LocationId) -> Vec<BlockId> {
        self.shards[loc.0 as usize].ids()
    }

    /// Total blocks across all locations, including unreachable ones.
    pub fn total_blocks(&self) -> usize {
        self.shards.iter().map(MemStore::len).sum()
    }

    /// Stores a block on its placed location.
    pub fn put(&self, id: BlockId, block: Block) {
        let loc = self.location_of(id);
        self.shards[loc.0 as usize].put(id, block);
    }

    /// Fetches a block, verifying its integrity.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when absent or the block's location is
    /// down; [`StoreError::Corrupted`] when the stored checksum no longer
    /// matches.
    pub fn get(&self, id: BlockId) -> Result<Block, StoreError> {
        let loc = self.location_of(id);
        if !self.cluster.read().is_available(loc) {
            return Err(StoreError::NotFound(id));
        }
        self.shards[loc.0 as usize].get(id)
    }

    /// Removes a block, returning whether it was present. Works even while
    /// the block's location is down (garbage collection on dead hardware).
    pub fn remove(&self, id: BlockId) -> bool {
        let loc = self.location_of(id);
        self.shards[loc.0 as usize].remove(id)
    }

    /// Whether the block is present *and* its location reachable.
    pub fn contains(&self, id: BlockId) -> bool {
        let loc = self.location_of(id);
        self.cluster.read().is_available(loc) && self.shards[loc.0 as usize].contains(id)
    }

    /// Number of currently reachable blocks.
    pub fn len(&self) -> usize {
        let cluster = self.cluster.read();
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| cluster.is_available(LocationId(*i as u32)))
            .map(|(_, s)| s.len())
            .sum()
    }

    /// Whether no block is currently reachable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ae_api::BlockSource for DistributedStore {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.get(id).ok()
    }

    fn has(&self, id: BlockId) -> bool {
        self.contains(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        self.get(id)
    }
}

impl ae_api::BlockSink for DistributedStore {
    fn store(&self, id: BlockId, block: Block) {
        self.put(id, block);
    }

    fn remove(&self, id: BlockId) -> bool {
        DistributedStore::remove(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn filled(n: u32) -> DistributedStore {
        let s = DistributedStore::new(n, Placement::Random { seed: 11 });
        for i in 1..=200 {
            s.put(id(i), Block::from_vec(vec![i as u8; 8]));
        }
        s
    }

    #[test]
    fn blocks_spread_over_locations() {
        let s = filled(10);
        assert_eq!(s.total_blocks(), 200);
        let nonempty = (0..10)
            .filter(|&l| !s.blocks_at(LocationId(l)).is_empty())
            .count();
        assert!(nonempty >= 8, "random placement should hit most locations");
    }

    #[test]
    fn location_failure_hides_blocks() {
        let s = filled(10);
        let victim = s.location_of(id(1));
        let co_located = s.blocks_at(victim).len();
        s.with_cluster(|c| c.fail(victim));

        assert!(matches!(s.get(id(1)), Err(StoreError::NotFound(_))));
        assert!(!s.contains(id(1)));
        assert!(!s.location_available(id(1)));
        assert_eq!(
            s.len(),
            200 - co_located,
            "len counts only reachable blocks"
        );
        // Contents survive the outage: restore and read again.
        s.with_cluster(|c| c.restore(victim));
        assert_eq!(s.get(id(1)).unwrap().as_slice(), &[1u8; 8]);
    }

    #[test]
    fn remove_works_even_when_unreachable() {
        let s = filled(5);
        let victim = s.location_of(id(7));
        s.with_cluster(|c| c.fail(victim));
        // Garbage collection may still drop blocks on a failed device.
        assert!(s.remove(id(7)));
        s.with_cluster(|c| c.restore(victim));
        assert!(!s.contains(id(7)));
    }

    #[test]
    fn put_rehomed_moves_block_to_live_location() {
        let s = filled(10);
        let victim_loc = s.location_of(id(3));
        s.with_cluster(|c| c.fail(victim_loc));
        assert!(s.get(id(3)).is_err(), "unreachable while location is down");
        // Re-home onto some live location; reads work during the outage.
        let new_loc = s.put_rehomed(id(3), Block::from_vec(vec![3u8; 8])).unwrap();
        assert_ne!(new_loc, victim_loc);
        assert_eq!(s.get(id(3)).unwrap().as_slice(), &[3u8; 8]);
        assert_eq!(s.location_of(id(3)), new_loc, "override recorded");
        // With every location down, re-homing is impossible.
        s.with_cluster(|c| {
            for l in 0..10 {
                c.fail(LocationId(l));
            }
        });
        assert!(s.put_rehomed(id(4), Block::zero(8)).is_none());
    }

    #[test]
    fn placement_is_stable() {
        let s = filled(10);
        for i in 1..=200 {
            assert_eq!(s.location_of(id(i)), s.location_of(id(i)));
        }
    }
}
