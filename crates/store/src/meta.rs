//! The archive's **on-backend metadata journal**: the persistent form of
//! the manifest, the write-order id log and the encoder frontier —
//! checkpointed, and as redundant as the data it describes.
//!
//! [`crate::Archive`] keeps its metadata as a sequence of records stored
//! as ordinary blocks under the reserved [`BlockId::Meta`] namespace of
//! the *same* backend that holds the data, so a process crash loses
//! nothing: [`crate::Archive::open`] replays the journal and resumes
//! exactly where the crashed process stopped. Two mechanisms keep the
//! metadata plane as durable as the blocks it indexes:
//!
//! * **Copy sets** — every record (and every checkpoint part and pointer
//!   cell) is written to `n` placement-distinct ids (default `n = 3`,
//!   [`MetaConfig::copies`]). Copy `c` of record `seq` lives at
//!   [`MetaId::record`]`(seq, c)`; all copies carry identical bytes.
//!   Readers fall through the copy set taking the first copy whose CRC32
//!   checks out, losses below `n` degrade a read instead of failing it,
//!   and [`crate::Archive::scrub`] re-materializes lost or corrupted
//!   copies the way it heals data blocks.
//! * **Checkpoints** — past a configurable record threshold (and on
//!   `seal`) the archive folds its entire state into a checkpoint record,
//!   commits it, and garbage-collects the superseded journal prefix, so
//!   `open` replays *checkpoint + suffix* instead of the whole history:
//!   O(checkpoint) open time, independent of archive age.
//!
//! # Record layout (format version 2)
//!
//! Every record is one block whose bytes are:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"AEMJ"` |
//! | 4      | 2    | format version, little-endian (`2`; `1` still decodes) |
//! | 6      | 2    | record kind, little-endian (below) |
//! | 8      | 8    | sequence number, little-endian — must equal the [`MetaId::seq`] of the id the record is stored under (the pointer **slot** for pointer records) |
//! | 16     | 4    | payload length `L`, little-endian |
//! | 20     | `L`  | kind-specific payload (below) |
//! | 20+L   | 4    | CRC32 (IEEE) over bytes `[0, 20+L)`, little-endian |
//!
//! Payloads (all integers little-endian; strings are UTF-8, length-prefixed
//! with a `u16`; block ids use the tagged encoding of [`encode_block_id`]):
//!
//! * **Genesis** (`kind 0`, written once at archive creation, copies of
//!   journal seq 0): scheme display name (string), block size (`u64`),
//!   and — version 2 — the copy-set width (`u16`), which pins
//!   [`MetaConfig::copies`] for the archive's whole life. Version-1
//!   genesis records have no width field and decode as one copy.
//!   [`crate::Archive::open`] refuses to replay a journal whose scheme
//!   name differs from the scheme it was given.
//! * **Put** (`kind 1`, one per [`crate::Archive::put`]): file name
//!   (string), byte length (`u64`), content CRC32 (`u32`), dense extent
//!   (`first_block u64`, `block_count u64`), the block ids this put stored
//!   (`u32` count, then ids, write order, redundancy included), and the
//!   post-put encoder-frontier snapshot (`u32` length + bytes, see
//!   [`ae_api::RedundancyScheme::frontier_snapshot`]).
//! * **Seal** (`kind 2`, at most one, written by
//!   [`crate::Archive::seal`]): the ids the flush stored (`u32` count +
//!   ids) and the post-seal frontier snapshot (`u32` length + bytes).
//! * **Checkpoint** (`kind 3`): one *part* of a [`CheckpointPayload`]
//!   snapshot — part index (`u32`), part count (`u32`), chunk bytes
//!   (`u32` length + bytes). A snapshot larger than
//!   [`MetaConfig::segment_bytes`] is split across `part count`
//!   consecutive journal sequence numbers; concatenating the chunks of
//!   parts `0..count` yields the payload.
//! * **Pointer** (`kind 4`, stored at the [`MetaId::pointer`] cells, not
//!   at journal sequence numbers): the journal seq of a fully-written
//!   checkpoint's part 0 (`u64`) and its part count (`u32`). Pointer
//!   cells are the journal's only **rewritable** blocks: two slots
//!   alternate (ping-pong), so a crash mid-overwrite always leaves the
//!   other slot's previous pointer intact.
//!
//! # Checkpoint commit and GC rules
//!
//! A checkpoint commits in three ordered steps, each step only started
//! after the previous is fully stored:
//!
//! 1. **Parts** are appended to the journal at the next sequence numbers
//!    (each part `n`-way, like any record).
//! 2. The **pointer** naming part 0 is written to the ping-pong slot not
//!    used by the previous checkpoint (all copies).
//! 3. Only then is the superseded prefix — every journal record after
//!    genesis and before part 0, including any older checkpoint's parts —
//!    **garbage-collected**. Genesis and the pointer cells survive GC.
//!
//! A crash anywhere in that sequence is safe: before step 2 completes the
//! old pointer still names the previous checkpoint (partially-written
//! parts are a torn tail, truncated on replay); after step 2, replay uses
//! the new checkpoint and any un-collected prefix records are ignored
//! stale leftovers, removed by the next checkpoint's GC.
//!
//! # Versioning and torn-write rules
//!
//! * The journal is **append-only** (pointer cells excepted): record `n`
//!   is written before record `n + 1`, records are never rewritten, and
//!   each copy is one atomically-stored block. The sequence number inside
//!   the record must match the id it is fetched from, so a block
//!   misdirected between archives cannot be replayed silently.
//! * A reader rejects any copy whose magic, version, kind, sequence
//!   number, length framing or CRC32 does not check out — with a typed
//!   error, never a panic — and falls through to the next copy. Copies
//!   that had to be skipped surface as a [`crate::MetaDamage`] report on
//!   the opened archive, and scrub heals them.
//! * **Torn tail**: if the *final* record of the journal has no valid
//!   copy (a write torn by the crash) and no record follows it, replay
//!   truncates the journal there — the un-acknowledged mutation is
//!   dropped, the archive reopens at the last durable state, and the
//!   truncation is reported via [`crate::Archive::torn_tail`]. A torn
//!   checkpoint tail (some parts missing, nothing beyond) truncates the
//!   *whole* partial checkpoint. Blocks the torn mutation already stored
//!   are orphans; the resumed encoder overwrites them.
//! * **Mid-journal damage is fatal at open only when a whole copy set is
//!   lost**: a record with *no* valid copy that is followed by a valid
//!   record means the metadata itself was destroyed beyond the
//!   redundancy, and replay fails with
//!   [`crate::archive::RecoveryError::CorruptRecord`] naming the record —
//!   stale or reordered state is never served silently. Replay probes a
//!   16-record window past a failure to distinguish damage from the
//!   tail; only a gap of *more* than 16 consecutive destroyed records
//!   with survivors beyond it is indistinguishable from end-of-journal.
//!   Likewise, after GC the pointer cells are the only road to the
//!   checkpoint: pointer cells that all decode invalid are a typed
//!   error, and losing **every** copy of **both** pointer slots without
//!   a trace is indistinguishable from an archive that never
//!   checkpointed — the one configuration beyond the metadata plane's
//!   `n - 1`-losses-per-record guarantee.
//!   A **live** archive keeps every record it wrote in memory and
//!   [`crate::Archive::scrub`] re-stores any copy the backend lost or
//!   corrupted, so the journal heals with the data it describes.

use ae_blocks::{crc32, BlockId, EdgeId, MetaId, NodeId, ReplicaId, ShardId, StrandClass};

/// Magic prefix of every journal record: "AE Meta Journal".
pub const MAGIC: [u8; 4] = *b"AEMJ";

/// Journal format version written by this build. Version-1 records (no
/// copy-set width in genesis, no checkpoint/pointer kinds) still decode.
pub const FORMAT_VERSION: u16 = 2;

/// The id of copy 0 of journal record `seq` — the id the whole record
/// had before copy sets existed.
pub fn meta_id(seq: u64) -> BlockId {
    BlockId::Meta(MetaId(seq))
}

/// The id of copy `copy` of journal record `seq`.
pub fn meta_copy_id(seq: u64, copy: u16) -> BlockId {
    BlockId::Meta(MetaId::record(seq, copy))
}

/// The id of copy `copy` of checkpoint-pointer cell `slot` (0 or 1).
pub fn pointer_id(slot: u64, copy: u16) -> BlockId {
    BlockId::Meta(MetaId::pointer(slot, copy))
}

/// Durability policy for an archive's metadata journal: how wide each
/// record's copy set is and when the journal is checkpointed.
///
/// The copy-set width is **pinned at archive creation** (persisted in the
/// genesis record); reopening with a different `copies` keeps the
/// archive's own width. Checkpoint cadence, by contrast, is a live
/// policy: each open chooses its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaConfig {
    /// Copies per record, `1..=`[`MetaId::MAX_COPIES`]. Each copy lands
    /// in a distinct placement slot; `copies - 1` losses per record
    /// degrade reads instead of failing them.
    pub copies: u16,
    /// Checkpoint after this many records accumulate past the previous
    /// checkpoint (and on `seal`). `None` disables checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Maximum chunk of a [`CheckpointPayload`] carried by one checkpoint
    /// part record — snapshots larger than this split into multiple
    /// parts.
    pub segment_bytes: usize,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            copies: 3,
            checkpoint_every: Some(64),
            segment_bytes: 64 * 1024,
        }
    }
}

impl MetaConfig {
    /// The pre-redundancy journal: one copy, never checkpointed.
    pub fn single() -> Self {
        MetaConfig {
            copies: 1,
            checkpoint_every: None,
            segment_bytes: 64 * 1024,
        }
    }

    /// Clamps the width into `1..=`[`MetaId::MAX_COPIES`].
    pub(crate) fn clamped_copies(&self) -> u16 {
        self.copies.clamp(1, MetaId::MAX_COPIES)
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRecord {
    /// Archive birth certificate (journal seq 0).
    Genesis {
        /// Display name of the scheme the archive was created over.
        scheme: String,
        /// Chunk size in bytes.
        block_size: u64,
        /// Copy-set width every record of this journal is written with
        /// (1 for version-1 journals).
        copies: u16,
    },
    /// One archived file.
    Put {
        /// File name.
        name: String,
        /// Original length in bytes.
        byte_len: u64,
        /// CRC32 of the original contents.
        crc: u32,
        /// 0-based index of the file's first data block in write order.
        first_block: u64,
        /// Number of data blocks.
        block_count: u64,
        /// Every id this put stored (data + redundancy), in write order.
        ids: Vec<BlockId>,
        /// Post-put encoder-frontier snapshot.
        frontier: Vec<u8>,
    },
    /// The archive was sealed.
    Seal {
        /// Ids the redundancy flush stored.
        ids: Vec<BlockId>,
        /// Post-seal encoder-frontier snapshot.
        frontier: Vec<u8>,
    },
    /// One part of a checkpoint snapshot (see [`CheckpointPayload`]).
    Checkpoint {
        /// 0-based index of this part.
        part: u32,
        /// Total parts in the snapshot.
        parts: u32,
        /// This part's slice of the encoded payload.
        chunk: Vec<u8>,
    },
    /// A checkpoint-pointer cell naming the committed checkpoint. Framed
    /// with the pointer **slot** as its sequence number.
    Pointer {
        /// Journal seq of the checkpoint's part 0.
        checkpoint: u64,
        /// The checkpoint's part count.
        parts: u32,
    },
}

/// The state a checkpoint folds into one snapshot: everything
/// [`crate::Archive::open`] otherwise reconstructs record by record —
/// the manifest, the full write-order id log, the sealed flag and the
/// encoder-frontier snapshot. Encoded with a leading payload-version
/// byte, chunked into [`MetaRecord::Checkpoint`] parts for storage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointPayload {
    /// Manifest rows in name order: `(name, byte_len, crc, first_block,
    /// block_count)` — the fields of [`crate::archive::Entry`].
    pub manifest: Vec<(String, u64, u32, u64, u64)>,
    /// Every id written through the archive, in write order.
    pub stored_ids: Vec<BlockId>,
    /// Whether the archive was sealed.
    pub sealed: bool,
    /// Encoder-frontier snapshot at checkpoint time.
    pub frontier: Vec<u8>,
}

const PAYLOAD_VERSION: u8 = 1;

impl CheckpointPayload {
    /// Serializes the snapshot (version byte + fields, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![PAYLOAD_VERSION];
        buf.extend_from_slice(&(self.manifest.len() as u32).to_le_bytes());
        for (name, byte_len, crc, first_block, block_count) in &self.manifest {
            put_str(&mut buf, name);
            buf.extend_from_slice(&byte_len.to_le_bytes());
            buf.extend_from_slice(&crc.to_le_bytes());
            buf.extend_from_slice(&first_block.to_le_bytes());
            buf.extend_from_slice(&block_count.to_le_bytes());
        }
        put_ids(&mut buf, &self.stored_ids);
        buf.push(self.sealed as u8);
        put_bytes(&mut buf, &self.frontier);
        buf
    }

    /// Parses a snapshot reassembled from checkpoint parts.
    ///
    /// # Errors
    ///
    /// A [`RecordError`] naming the first structural check that failed.
    pub fn decode(bytes: &[u8]) -> Result<Self, RecordError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let version = r.u8()?;
        if version != PAYLOAD_VERSION {
            return Err(format!("checkpoint payload version {version}"));
        }
        let rows = r.u32()? as usize;
        let mut manifest = Vec::with_capacity(rows.min(1 << 16));
        for _ in 0..rows {
            manifest.push((r.string()?, r.u64()?, r.u32()?, r.u64()?, r.u64()?));
        }
        let stored_ids = r.ids()?;
        let sealed = match r.u8()? {
            0 => false,
            1 => true,
            b => return Err(format!("bad sealed flag {b}")),
        };
        let frontier = r.bytes()?;
        r.finish()?;
        Ok(CheckpointPayload {
            manifest,
            stored_ids,
            sealed,
            frontier,
        })
    }
}

/// Why a record's bytes could not be decoded. The string names the exact
/// check that failed; [`crate::Archive::open`] wraps it with the record's
/// sequence number.
pub type RecordError = String;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
}

fn put_ids(buf: &mut Vec<u8>, ids: &[BlockId]) {
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        encode_block_id(buf, id);
    }
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Appends the tagged wire form of `id`: a one-byte variant tag followed
/// by the variant's fields, little-endian (`0` data: node `u64`;
/// `1` parity: class `u8`, left `u64`; `2` shard: stripe `u64`, index
/// `u16`; `3` replica: node `u64`, copy `u16`; `4` meta: seq `u64`).
pub fn encode_block_id(buf: &mut Vec<u8>, id: BlockId) {
    match id {
        BlockId::Data(NodeId(i)) => {
            buf.push(0);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        BlockId::Parity(EdgeId { class, left }) => {
            buf.push(1);
            buf.push(class.index() as u8);
            buf.extend_from_slice(&left.0.to_le_bytes());
        }
        BlockId::Shard(ShardId { stripe, index }) => {
            buf.push(2);
            buf.extend_from_slice(&stripe.to_le_bytes());
            buf.extend_from_slice(&index.to_le_bytes());
        }
        BlockId::Replica(ReplicaId { node, copy }) => {
            buf.push(3);
            buf.extend_from_slice(&node.0.to_le_bytes());
            buf.extend_from_slice(&copy.to_le_bytes());
        }
        BlockId::Meta(MetaId(seq)) => {
            buf.push(4);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
    }
}

/// Bounds-checked cursor over record bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let bytes = &self.buf[self.pos..end];
                self.pos = end;
                Ok(bytes)
            }
            None => Err(format!("truncated at byte {}", self.pos)),
        }
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RecordError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, RecordError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn block_id(&mut self) -> Result<BlockId, RecordError> {
        Ok(match self.u8()? {
            0 => BlockId::Data(NodeId(self.u64()?)),
            1 => {
                let class = match self.u8()? {
                    0 => StrandClass::Horizontal,
                    1 => StrandClass::RightHanded,
                    2 => StrandClass::LeftHanded,
                    c => return Err(format!("unknown strand class {c}")),
                };
                BlockId::Parity(EdgeId::new(class, NodeId(self.u64()?)))
            }
            2 => BlockId::Shard(ShardId {
                stripe: self.u64()?,
                index: self.u16()?,
            }),
            3 => BlockId::Replica(ReplicaId {
                node: NodeId(self.u64()?),
                copy: self.u16()?,
            }),
            4 => BlockId::Meta(MetaId(self.u64()?)),
            t => return Err(format!("unknown block-id tag {t}")),
        })
    }

    fn ids(&mut self) -> Result<Vec<BlockId>, RecordError> {
        let count = self.u32()? as usize;
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            out.push(self.block_id()?);
        }
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, RecordError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), RecordError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing payload byte(s)",
                self.buf.len() - self.pos
            ))
        }
    }
}

impl MetaRecord {
    fn kind(&self) -> u16 {
        match self {
            MetaRecord::Genesis { .. } => 0,
            MetaRecord::Put { .. } => 1,
            MetaRecord::Seal { .. } => 2,
            MetaRecord::Checkpoint { .. } => 3,
            MetaRecord::Pointer { .. } => 4,
        }
    }

    /// Encodes the record for storage at `Meta(seq)`: header, payload and
    /// trailing CRC32 as documented at module level.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            MetaRecord::Genesis {
                scheme,
                block_size,
                copies,
            } => {
                put_str(&mut payload, scheme);
                payload.extend_from_slice(&block_size.to_le_bytes());
                payload.extend_from_slice(&copies.to_le_bytes());
            }
            MetaRecord::Put {
                name,
                byte_len,
                crc,
                first_block,
                block_count,
                ids,
                frontier,
            } => {
                put_str(&mut payload, name);
                payload.extend_from_slice(&byte_len.to_le_bytes());
                payload.extend_from_slice(&crc.to_le_bytes());
                payload.extend_from_slice(&first_block.to_le_bytes());
                payload.extend_from_slice(&block_count.to_le_bytes());
                put_ids(&mut payload, ids);
                put_bytes(&mut payload, frontier);
            }
            MetaRecord::Seal { ids, frontier } => {
                put_ids(&mut payload, ids);
                put_bytes(&mut payload, frontier);
            }
            MetaRecord::Checkpoint { part, parts, chunk } => {
                payload.extend_from_slice(&part.to_le_bytes());
                payload.extend_from_slice(&parts.to_le_bytes());
                put_bytes(&mut payload, chunk);
            }
            MetaRecord::Pointer { checkpoint, parts } => {
                payload.extend_from_slice(&checkpoint.to_le_bytes());
                payload.extend_from_slice(&parts.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(24 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind().to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes the record stored at `Meta(seq)`, verifying magic, version,
    /// sequence number, length framing and CRC32.
    ///
    /// # Errors
    ///
    /// A [`RecordError`] naming the first check that failed — the caller
    /// decides whether that means a torn tail (truncate) or damaged
    /// metadata (fatal).
    pub fn decode(seq: u64, bytes: &[u8]) -> Result<MetaRecord, RecordError> {
        if bytes.len() < 24 {
            return Err(format!("{} bytes is shorter than any record", bytes.len()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4"));
        if crc32(body) != stored_crc {
            return Err("record CRC mismatch".to_string());
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err("bad magic".to_string());
        }
        let version = r.u16()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(format!(
                "format version {version}, expected 1..={FORMAT_VERSION}"
            ));
        }
        let kind = r.u16()?;
        let stored_seq = r.u64()?;
        if stored_seq != seq {
            return Err(format!("sequence {stored_seq} stored under meta#{seq}"));
        }
        let payload_len = r.u32()? as usize;
        if body.len() != 20 + payload_len {
            return Err(format!(
                "payload length {payload_len} does not match record length {}",
                bytes.len()
            ));
        }
        let record = match kind {
            0 => MetaRecord::Genesis {
                scheme: r.string()?,
                block_size: r.u64()?,
                // Version-1 journals predate copy sets: width 1.
                copies: if version >= 2 { r.u16()? } else { 1 },
            },
            1 => MetaRecord::Put {
                name: r.string()?,
                byte_len: r.u64()?,
                crc: r.u32()?,
                first_block: r.u64()?,
                block_count: r.u64()?,
                ids: r.ids()?,
                frontier: r.bytes()?,
            },
            2 => MetaRecord::Seal {
                ids: r.ids()?,
                frontier: r.bytes()?,
            },
            3 => MetaRecord::Checkpoint {
                part: r.u32()?,
                parts: r.u32()?,
                chunk: r.bytes()?,
            },
            4 => MetaRecord::Pointer {
                checkpoint: r.u64()?,
                parts: r.u32()?,
            },
            k => return Err(format!("unknown record kind {k}")),
        };
        r.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ids() -> Vec<BlockId> {
        vec![
            BlockId::Data(NodeId(7)),
            BlockId::Parity(EdgeId::new(StrandClass::LeftHanded, NodeId(7))),
            BlockId::Shard(ShardId {
                stripe: 3,
                index: 1,
            }),
            BlockId::Replica(ReplicaId {
                node: NodeId(9),
                copy: 2,
            }),
            BlockId::Meta(MetaId(4)),
        ]
    }

    #[test]
    fn records_roundtrip() {
        let records = [
            MetaRecord::Genesis {
                scheme: "AE(3,2,5)".into(),
                block_size: 64,
                copies: 3,
            },
            MetaRecord::Put {
                name: "report.pdf".into(),
                byte_len: 2000,
                crc: 0xDEAD_BEEF,
                first_block: 5,
                block_count: 32,
                ids: sample_ids(),
                frontier: vec![1, 2, 3],
            },
            MetaRecord::Seal {
                ids: sample_ids(),
                frontier: vec![],
            },
            MetaRecord::Checkpoint {
                part: 1,
                parts: 3,
                chunk: vec![0xAE; 100],
            },
            MetaRecord::Pointer {
                checkpoint: 41,
                parts: 3,
            },
        ];
        for (seq, record) in records.iter().enumerate() {
            let bytes = record.encode(seq as u64);
            assert_eq!(
                MetaRecord::decode(seq as u64, &bytes).as_ref(),
                Ok(record),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = MetaRecord::Put {
            name: "f".into(),
            byte_len: 10,
            crc: 1,
            first_block: 0,
            block_count: 1,
            ids: sample_ids(),
            frontier: vec![9; 17],
        }
        .encode(3);
        for cut in 0..bytes.len() {
            assert!(
                MetaRecord::decode(3, &bytes[..cut]).is_err(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn field_corruption_is_detected() {
        let good = MetaRecord::Genesis {
            scheme: "RS(4,2)".into(),
            block_size: 32,
            copies: 3,
        }
        .encode(0);
        // Flip one byte anywhere: the CRC (or, for the CRC bytes
        // themselves, the body mismatch) must catch it.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(MetaRecord::decode(0, &bad).is_err(), "flip at {i}");
        }
        // A record replayed under the wrong sequence number is rejected.
        assert!(MetaRecord::decode(1, &good).is_err());
    }

    #[test]
    fn version_1_genesis_decodes_as_one_copy() {
        // Hand-build a v1 record: same framing, version 1, no width field.
        let mut payload = Vec::new();
        put_str(&mut payload, "AE(3,2,5)");
        payload.extend_from_slice(&64u64.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            MetaRecord::decode(0, &bytes),
            Ok(MetaRecord::Genesis {
                scheme: "AE(3,2,5)".into(),
                block_size: 64,
                copies: 1,
            })
        );
        // Versions from the future are rejected, version 0 too.
        let mut future = bytes.clone();
        future[4] = 9;
        assert!(MetaRecord::decode(0, &future).is_err());
    }

    #[test]
    fn checkpoint_payload_roundtrips_and_rejects_damage() {
        let payload = CheckpointPayload {
            manifest: vec![
                ("a.txt".into(), 1000, 0xAB, 0, 16),
                ("b.txt".into(), 64, 0xCD, 16, 1),
            ],
            stored_ids: sample_ids(),
            sealed: true,
            frontier: vec![7; 33],
        };
        let bytes = payload.encode();
        assert_eq!(CheckpointPayload::decode(&bytes), Ok(payload.clone()));
        // Chunked through checkpoint part records and reassembled.
        let parts: Vec<&[u8]> = bytes.chunks(10).collect();
        let mut reassembled = Vec::new();
        for (i, chunk) in parts.iter().enumerate() {
            let rec = MetaRecord::Checkpoint {
                part: i as u32,
                parts: parts.len() as u32,
                chunk: chunk.to_vec(),
            };
            let seq = 40 + i as u64;
            match MetaRecord::decode(seq, &rec.encode(seq)).unwrap() {
                MetaRecord::Checkpoint { chunk, .. } => reassembled.extend_from_slice(&chunk),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(CheckpointPayload::decode(&reassembled), Ok(payload));
        // Truncations and trailing garbage are typed errors.
        for cut in 0..bytes.len() {
            assert!(CheckpointPayload::decode(&bytes[..cut]).is_err(), "{cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(CheckpointPayload::decode(&long).is_err());
    }

    #[test]
    fn meta_config_defaults_and_clamping() {
        let cfg = MetaConfig::default();
        assert_eq!(cfg.copies, 3);
        assert_eq!(cfg.checkpoint_every, Some(64));
        assert_eq!(MetaConfig::single().copies, 1);
        assert_eq!(MetaConfig::single().checkpoint_every, None);
        let wide = MetaConfig {
            copies: 99,
            ..MetaConfig::default()
        };
        assert_eq!(wide.clamped_copies(), MetaId::MAX_COPIES);
        let zero = MetaConfig {
            copies: 0,
            ..MetaConfig::default()
        };
        assert_eq!(zero.clamped_copies(), 1);
    }

    #[test]
    fn copy_and_pointer_ids_are_disjoint_namespaces() {
        let mut all = std::collections::HashSet::new();
        for seq in 0..50 {
            for copy in 0..3 {
                assert!(all.insert(meta_copy_id(seq, copy)));
            }
        }
        for slot in 0..2 {
            for copy in 0..3 {
                assert!(all.insert(pointer_id(slot, copy)));
            }
        }
        assert_eq!(meta_copy_id(7, 0), meta_id(7), "copy 0 is the v1 id");
    }
}
