//! The archive's **on-backend metadata journal**: the persistent form of
//! the manifest, the write-order id log and the encoder frontier.
//!
//! [`crate::Archive`] keeps its metadata as a sequence of records stored
//! as ordinary blocks under the reserved [`BlockId::Meta`] namespace of
//! the *same* backend that holds the data — `Meta(0)`, `Meta(1)`,
//! `Meta(2)`, … — so a process crash loses nothing:
//! [`crate::Archive::open`] replays the journal and resumes exactly where
//! the crashed process stopped.
//!
//! # Record layout (format version 1)
//!
//! Every record is one block whose bytes are:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"AEMJ"` |
//! | 4      | 2    | format version, little-endian (`1`) |
//! | 6      | 2    | record kind, little-endian (`0` genesis, `1` put, `2` seal) |
//! | 8      | 8    | sequence number, little-endian — must equal the [`MetaId`] the record is stored under |
//! | 16     | 4    | payload length `L`, little-endian |
//! | 20     | `L`  | kind-specific payload (below) |
//! | 20+L   | 4    | CRC32 (IEEE) over bytes `[0, 20+L)`, little-endian |
//!
//! Payloads (all integers little-endian; strings are UTF-8, length-prefixed
//! with a `u16`; block ids use the tagged encoding of [`encode_block_id`]):
//!
//! * **Genesis** (`kind 0`, written once at archive creation, always at
//!   `Meta(0)`): scheme display name (string), block size (`u64`).
//!   [`crate::Archive::open`] refuses to replay a journal whose scheme
//!   name differs from the scheme it was given.
//! * **Put** (`kind 1`, one per [`crate::Archive::put`]): file name
//!   (string), byte length (`u64`), content CRC32 (`u32`), dense extent
//!   (`first_block u64`, `block_count u64`), the block ids this put stored
//!   (`u32` count, then ids, write order, redundancy included), and the
//!   post-put encoder-frontier snapshot (`u32` length + bytes, see
//!   [`ae_api::RedundancyScheme::frontier_snapshot`]).
//! * **Seal** (`kind 2`, at most one, written by
//!   [`crate::Archive::seal`]): the ids the flush stored (`u32` count +
//!   ids) and the post-seal frontier snapshot (`u32` length + bytes).
//!
//! # Versioning and torn-write rules
//!
//! * The journal is **append-only**: record `n` is written before record
//!   `n + 1`, records are never rewritten, and each record is one
//!   atomically-stored block. The sequence number inside the record must
//!   match the id it is fetched from, so a block misdirected between
//!   archives cannot be replayed silently.
//! * A reader rejects any record whose magic, version, kind, sequence
//!   number, length framing or CRC32 does not check out — with a typed
//!   error, never a panic.
//! * **Torn tail**: if the *final* record of the journal is invalid (a
//!   write torn by the crash) and no record follows it, replay truncates
//!   the journal there — the un-acknowledged mutation is dropped, the
//!   archive reopens at the last durable state, and the truncation is
//!   reported via [`crate::Archive::torn_tail`]. Blocks the torn mutation
//!   already stored are orphans; the resumed encoder overwrites them.
//! * **Mid-journal damage is fatal at open**: an invalid or missing
//!   record that is *followed* by a valid one means the metadata itself
//!   was damaged (not a torn write), and replay fails with
//!   [`crate::archive::RecoveryError::CorruptRecord`] naming the record —
//!   stale or reordered state is never served silently. Replay probes a
//!   16-record window past a failure to distinguish damage from the
//!   tail; only a gap of *more* than 16 consecutive destroyed records
//!   with survivors beyond it is indistinguishable from end-of-journal.
//!   A **live** archive, by contrast, keeps every record it wrote in
//!   memory and [`crate::Archive::scrub`] re-stores any the backend
//!   lost, so the journal heals with the data it describes.

use ae_blocks::{crc32, BlockId, EdgeId, MetaId, NodeId, ReplicaId, ShardId, StrandClass};

/// Magic prefix of every journal record: "AE Meta Journal".
pub const MAGIC: [u8; 4] = *b"AEMJ";

/// Journal format version written and accepted by this build.
pub const FORMAT_VERSION: u16 = 1;

/// The id of journal record `seq`.
pub fn meta_id(seq: u64) -> BlockId {
    BlockId::Meta(MetaId(seq))
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaRecord {
    /// Archive birth certificate (`Meta(0)`).
    Genesis {
        /// Display name of the scheme the archive was created over.
        scheme: String,
        /// Chunk size in bytes.
        block_size: u64,
    },
    /// One archived file.
    Put {
        /// File name.
        name: String,
        /// Original length in bytes.
        byte_len: u64,
        /// CRC32 of the original contents.
        crc: u32,
        /// 0-based index of the file's first data block in write order.
        first_block: u64,
        /// Number of data blocks.
        block_count: u64,
        /// Every id this put stored (data + redundancy), in write order.
        ids: Vec<BlockId>,
        /// Post-put encoder-frontier snapshot.
        frontier: Vec<u8>,
    },
    /// The archive was sealed.
    Seal {
        /// Ids the redundancy flush stored.
        ids: Vec<BlockId>,
        /// Post-seal encoder-frontier snapshot.
        frontier: Vec<u8>,
    },
}

/// Why a record's bytes could not be decoded. The string names the exact
/// check that failed; [`crate::Archive::open`] wraps it with the record's
/// sequence number.
pub type RecordError = String;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
}

fn put_ids(buf: &mut Vec<u8>, ids: &[BlockId]) {
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        encode_block_id(buf, id);
    }
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Appends the tagged wire form of `id`: a one-byte variant tag followed
/// by the variant's fields, little-endian (`0` data: node `u64`;
/// `1` parity: class `u8`, left `u64`; `2` shard: stripe `u64`, index
/// `u16`; `3` replica: node `u64`, copy `u16`; `4` meta: seq `u64`).
pub fn encode_block_id(buf: &mut Vec<u8>, id: BlockId) {
    match id {
        BlockId::Data(NodeId(i)) => {
            buf.push(0);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        BlockId::Parity(EdgeId { class, left }) => {
            buf.push(1);
            buf.push(class.index() as u8);
            buf.extend_from_slice(&left.0.to_le_bytes());
        }
        BlockId::Shard(ShardId { stripe, index }) => {
            buf.push(2);
            buf.extend_from_slice(&stripe.to_le_bytes());
            buf.extend_from_slice(&index.to_le_bytes());
        }
        BlockId::Replica(ReplicaId { node, copy }) => {
            buf.push(3);
            buf.extend_from_slice(&node.0.to_le_bytes());
            buf.extend_from_slice(&copy.to_le_bytes());
        }
        BlockId::Meta(MetaId(seq)) => {
            buf.push(4);
            buf.extend_from_slice(&seq.to_le_bytes());
        }
    }
}

/// Bounds-checked cursor over record bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let bytes = &self.buf[self.pos..end];
                self.pos = end;
                Ok(bytes)
            }
            None => Err(format!("truncated at byte {}", self.pos)),
        }
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RecordError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, RecordError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn block_id(&mut self) -> Result<BlockId, RecordError> {
        Ok(match self.u8()? {
            0 => BlockId::Data(NodeId(self.u64()?)),
            1 => {
                let class = match self.u8()? {
                    0 => StrandClass::Horizontal,
                    1 => StrandClass::RightHanded,
                    2 => StrandClass::LeftHanded,
                    c => return Err(format!("unknown strand class {c}")),
                };
                BlockId::Parity(EdgeId::new(class, NodeId(self.u64()?)))
            }
            2 => BlockId::Shard(ShardId {
                stripe: self.u64()?,
                index: self.u16()?,
            }),
            3 => BlockId::Replica(ReplicaId {
                node: NodeId(self.u64()?),
                copy: self.u16()?,
            }),
            4 => BlockId::Meta(MetaId(self.u64()?)),
            t => return Err(format!("unknown block-id tag {t}")),
        })
    }

    fn ids(&mut self) -> Result<Vec<BlockId>, RecordError> {
        let count = self.u32()? as usize;
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            out.push(self.block_id()?);
        }
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, RecordError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), RecordError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing payload byte(s)",
                self.buf.len() - self.pos
            ))
        }
    }
}

impl MetaRecord {
    fn kind(&self) -> u16 {
        match self {
            MetaRecord::Genesis { .. } => 0,
            MetaRecord::Put { .. } => 1,
            MetaRecord::Seal { .. } => 2,
        }
    }

    /// Encodes the record for storage at `Meta(seq)`: header, payload and
    /// trailing CRC32 as documented at module level.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            MetaRecord::Genesis { scheme, block_size } => {
                put_str(&mut payload, scheme);
                payload.extend_from_slice(&block_size.to_le_bytes());
            }
            MetaRecord::Put {
                name,
                byte_len,
                crc,
                first_block,
                block_count,
                ids,
                frontier,
            } => {
                put_str(&mut payload, name);
                payload.extend_from_slice(&byte_len.to_le_bytes());
                payload.extend_from_slice(&crc.to_le_bytes());
                payload.extend_from_slice(&first_block.to_le_bytes());
                payload.extend_from_slice(&block_count.to_le_bytes());
                put_ids(&mut payload, ids);
                put_bytes(&mut payload, frontier);
            }
            MetaRecord::Seal { ids, frontier } => {
                put_ids(&mut payload, ids);
                put_bytes(&mut payload, frontier);
            }
        }
        let mut out = Vec::with_capacity(24 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind().to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes the record stored at `Meta(seq)`, verifying magic, version,
    /// sequence number, length framing and CRC32.
    ///
    /// # Errors
    ///
    /// A [`RecordError`] naming the first check that failed — the caller
    /// decides whether that means a torn tail (truncate) or damaged
    /// metadata (fatal).
    pub fn decode(seq: u64, bytes: &[u8]) -> Result<MetaRecord, RecordError> {
        if bytes.len() < 24 {
            return Err(format!("{} bytes is shorter than any record", bytes.len()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4"));
        if crc32(body) != stored_crc {
            return Err("record CRC mismatch".to_string());
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err("bad magic".to_string());
        }
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "format version {version}, expected {FORMAT_VERSION}"
            ));
        }
        let kind = r.u16()?;
        let stored_seq = r.u64()?;
        if stored_seq != seq {
            return Err(format!("sequence {stored_seq} stored under meta#{seq}"));
        }
        let payload_len = r.u32()? as usize;
        if body.len() != 20 + payload_len {
            return Err(format!(
                "payload length {payload_len} does not match record length {}",
                bytes.len()
            ));
        }
        let record = match kind {
            0 => MetaRecord::Genesis {
                scheme: r.string()?,
                block_size: r.u64()?,
            },
            1 => MetaRecord::Put {
                name: r.string()?,
                byte_len: r.u64()?,
                crc: r.u32()?,
                first_block: r.u64()?,
                block_count: r.u64()?,
                ids: r.ids()?,
                frontier: r.bytes()?,
            },
            2 => MetaRecord::Seal {
                ids: r.ids()?,
                frontier: r.bytes()?,
            },
            k => return Err(format!("unknown record kind {k}")),
        };
        r.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ids() -> Vec<BlockId> {
        vec![
            BlockId::Data(NodeId(7)),
            BlockId::Parity(EdgeId::new(StrandClass::LeftHanded, NodeId(7))),
            BlockId::Shard(ShardId {
                stripe: 3,
                index: 1,
            }),
            BlockId::Replica(ReplicaId {
                node: NodeId(9),
                copy: 2,
            }),
            BlockId::Meta(MetaId(4)),
        ]
    }

    #[test]
    fn records_roundtrip() {
        let records = [
            MetaRecord::Genesis {
                scheme: "AE(3,2,5)".into(),
                block_size: 64,
            },
            MetaRecord::Put {
                name: "report.pdf".into(),
                byte_len: 2000,
                crc: 0xDEAD_BEEF,
                first_block: 5,
                block_count: 32,
                ids: sample_ids(),
                frontier: vec![1, 2, 3],
            },
            MetaRecord::Seal {
                ids: sample_ids(),
                frontier: vec![],
            },
        ];
        for (seq, record) in records.iter().enumerate() {
            let bytes = record.encode(seq as u64);
            assert_eq!(
                MetaRecord::decode(seq as u64, &bytes).as_ref(),
                Ok(record),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = MetaRecord::Put {
            name: "f".into(),
            byte_len: 10,
            crc: 1,
            first_block: 0,
            block_count: 1,
            ids: sample_ids(),
            frontier: vec![9; 17],
        }
        .encode(3);
        for cut in 0..bytes.len() {
            assert!(
                MetaRecord::decode(3, &bytes[..cut]).is_err(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn field_corruption_is_detected() {
        let good = MetaRecord::Genesis {
            scheme: "RS(4,2)".into(),
            block_size: 32,
        }
        .encode(0);
        // Flip one byte anywhere: the CRC (or, for the CRC bytes
        // themselves, the body mismatch) must catch it.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(MetaRecord::decode(0, &bad).is_err(), "flip at {i}");
        }
        // A record replayed under the wrong sequence number is rejected.
        assert!(MetaRecord::decode(1, &good).is_err());
    }
}
