//! Placement policies: mapping blocks to locations.
//!
//! The policy itself — uniform random keyed by a SplitMix64 hash, or
//! round-robin — is the canonical [`ae_api::Placement`], shared with the
//! availability-plane simulation (`ae-sim` keys it by dense universe
//! position). This module adds the store-side half: deriving a stable
//! 64-bit key from a [`BlockId`] so that blocks of different schemes never
//! collide in one store, via the [`PlaceBlocks`] extension trait.

use crate::cluster::LocationId;
use ae_blocks::{BlockId, EdgeId, NodeId};

pub use ae_api::Placement;

/// Shard/replica ids get key-space offsets far above lattice ids so the
/// schemes never collide in one store.
const FOREIGN_BASE: u64 = 1 << 62;

/// Store-side placement of block ids: the canonical policy applied to a
/// per-id key. Random placement hashes a stable id key; round-robin uses
/// the id's write-sequence index so that a block and its redundancy land
/// in distinct failure domains.
pub trait PlaceBlocks {
    /// The location for `id` among `n` locations.
    fn place(&self, id: BlockId, n: u32) -> LocationId;
}

impl PlaceBlocks for Placement {
    fn place(&self, id: BlockId, n: u32) -> LocationId {
        let key = match self {
            Placement::Random { .. } => block_key(id),
            Placement::RoundRobin => sequence_index(id),
        };
        LocationId(self.place_key(key, n))
    }
}

/// Stable 64-bit key for a block id.
fn block_key(id: BlockId) -> u64 {
    match id {
        BlockId::Data(NodeId(i)) => i << 2,
        BlockId::Parity(EdgeId { class, left }) => (left.0 << 2) | (class.index() as u64 + 1),
        BlockId::Shard(s) => FOREIGN_BASE | (s.stripe << 9) | s.index as u64,
        BlockId::Replica(r) => (FOREIGN_BASE << 1) | (r.node.0 << 9) | r.copy as u64,
        BlockId::Meta(m) => (FOREIGN_BASE | (FOREIGN_BASE << 1)) | meta_sequence(m),
    }
}

/// Round-robin frame for metadata ids: the copies of one record (or
/// pointer cell) occupy **consecutive** slots, so an n-way copy set lands
/// in n distinct failure domains whenever the store has that many
/// locations — keying by the raw id would collapse copies of a record
/// onto one location for power-of-two location counts, defeating the
/// redundancy. Records use offsets `0..MAX_COPIES` within their frame,
/// pointer cells the `MAX_COPIES..` half, so the two families never
/// collide.
fn meta_sequence(m: ae_blocks::MetaId) -> u64 {
    let half = ae_blocks::MetaId::MAX_COPIES as u64;
    let base = if m.is_pointer() { half } else { 0 };
    m.seq() * 2 * half + base + m.copy() as u64
}

/// Sequential index for round-robin: interleave node and its parities in
/// write order (node i, then its α parities).
fn sequence_index(id: BlockId) -> u64 {
    match id {
        BlockId::Data(NodeId(i)) => i * 4,
        BlockId::Parity(EdgeId { class, left }) => left.0 * 4 + 1 + class.index() as u64,
        BlockId::Shard(s) => s.stripe * 4 + s.index as u64,
        BlockId::Replica(r) => r.node.0 * 4 + r.copy as u64,
        // Metadata records spread over locations like any other sequence,
        // copies of one record in consecutive (distinct) slots.
        BlockId::Meta(m) => meta_sequence(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass;

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn parity(class: StrandClass, i: u64) -> BlockId {
        BlockId::Parity(EdgeId::new(class, NodeId(i)))
    }

    #[test]
    fn placement_is_deterministic() {
        let p = Placement::Random { seed: 99 };
        for i in 1..100 {
            assert_eq!(p.place(data(i), 100), p.place(data(i), 100));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Placement::Random { seed: 1 };
        let b = Placement::Random { seed: 2 };
        let moved = (1..1000)
            .filter(|&i| a.place(data(i), 100) != b.place(data(i), 100))
            .count();
        assert!(moved > 900, "only {moved} of 999 moved");
    }

    #[test]
    fn random_placement_is_roughly_uniform() {
        let p = Placement::Random { seed: 5 };
        let n = 100u32;
        let mut counts = vec![0u32; n as usize];
        for i in 1..=100_000u64 {
            counts[p.place(data(i), n).0 as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Mean 1000 per location; allow generous but telling bounds.
        assert!(*min > 800 && *max < 1200, "min {min}, max {max}");
    }

    #[test]
    fn nodes_and_their_parities_get_distinct_keys() {
        let p = Placement::Random { seed: 5 };
        // Distinct blocks must be able to land in distinct locations: check
        // keys differ (collisions in a 100-way map are fine and expected).
        let ids = [
            data(10),
            parity(StrandClass::Horizontal, 10),
            parity(StrandClass::RightHanded, 10),
            parity(StrandClass::LeftHanded, 10),
        ];
        let keys: std::collections::HashSet<u64> =
            ids.iter().map(|&i| super::block_key(i)).collect();
        assert_eq!(keys.len(), 4);
        let _ = p; // placement itself exercised elsewhere
    }

    #[test]
    fn round_robin_separates_lattice_neighbours() {
        let p = Placement::RoundRobin;
        let n = 100;
        // A node and its α parities occupy consecutive slots.
        let a = p.place(data(10), n);
        let b = p.place(parity(StrandClass::Horizontal, 10), n);
        let c = p.place(parity(StrandClass::RightHanded, 10), n);
        let d = p.place(data(11), n);
        let set: std::collections::HashSet<_> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4, "neighbours in distinct locations");
    }

    #[test]
    fn round_robin_wraps() {
        let p = Placement::RoundRobin;
        assert_eq!(
            p.place(data(1), 4),
            p.place(data(2), 4),
            "4 slots per node, n=4"
        );
    }

    #[test]
    fn meta_copies_of_one_record_land_in_distinct_locations() {
        use ae_blocks::MetaId;
        let copies = 3u16;
        for n in [3u32, 4, 8, 16] {
            for seq in [0u64, 1, 5, 100] {
                let spots: std::collections::HashSet<_> = (0..copies)
                    .map(|c| Placement::RoundRobin.place(BlockId::Meta(MetaId::record(seq, c)), n))
                    .collect();
                assert_eq!(spots.len(), copies as usize, "seq {seq}, {n} locations");
                let ptr_spots: std::collections::HashSet<_> = (0..copies)
                    .map(|c| {
                        Placement::RoundRobin.place(BlockId::Meta(MetaId::pointer(seq % 2, c)), n)
                    })
                    .collect();
                assert_eq!(
                    ptr_spots.len(),
                    copies as usize,
                    "pointer slot, {n} locations"
                );
            }
        }
        // Random placement keys every copy distinctly too.
        let keys: std::collections::HashSet<u64> = (0..copies)
            .flat_map(|c| {
                [
                    super::block_key(BlockId::Meta(MetaId::record(9, c))),
                    super::block_key(BlockId::Meta(MetaId::pointer(0, c))),
                ]
            })
            .collect();
        assert_eq!(keys.len(), 2 * copies as usize);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_locations_rejected() {
        Placement::RoundRobin.place(data(1), 0);
    }
}
