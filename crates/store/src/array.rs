//! Use case B: entangled mirror disk arrays (§IV.B.1).
//!
//! Simple entanglements (α = 1) over a disk array with equal numbers of
//! data and parity drives — the space overhead of mirroring, but far better
//! reliability (the earlier work reports 90–98% lower 5-year data-loss
//! probability). Two layouts:
//!
//! * **Full partition** — blocks are written sequentially per drive; most
//!   drives stay idle and can be powered off (MAID-style).
//! * **Block-level striping** — blocks round-robin over all drives for
//!   throughput.
//!
//! And two chain shapes ([`ChainMode`]): open (the tail parity has a single
//! repair tuple, surfaced as a typed [`crate::chain::ExtremityWarning`])
//! and closed (the ring removes the extremity weakness).
//!
//! The chain logic itself — encoding, repair tuples, the dense
//! `dense_index`/`block_at` bijection — lives in
//! [`crate::chain::EntangledChain`], a first-class
//! [`ae_api::RedundancyScheme`]; [`EntangledArray`] is a thin wrapper
//! adding drive topology (layout, drive failures) on top. Drive-failure
//! scenarios therefore run through the exact same generic repair planners
//! and availability plane as every other scheme.

use crate::chain::EntangledChain;
use crate::store::{MemStore, StoreError};
use ae_api::RedundancyScheme;
use ae_blocks::{Block, BlockId, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

pub use crate::chain::{ChainMode, ExtremityWarning};

/// Physical drive index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DriveId(pub u32);

/// Data layout across drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Fill one drive before moving to the next (`blocks_per_drive` each).
    FullPartition {
        /// Capacity of each drive in blocks.
        blocks_per_drive: u64,
    },
    /// Round-robin striping over all drives.
    Striping,
}

/// An entangled mirror array: `drives` data drives plus `drives` parity
/// drives, α = 1 entanglement between them — a drive topology over the
/// [`EntangledChain`] scheme.
pub struct EntangledArray {
    drives: u32,
    layout: Layout,
    chain: EntangledChain,
    store: MemStore,
    failed_drives: std::collections::HashSet<DriveId>,
}

impl EntangledArray {
    /// Creates an array with `drives` data drives (and as many parity
    /// drives).
    ///
    /// # Panics
    ///
    /// Panics for zero drives or zero block size.
    pub fn new(drives: u32, layout: Layout, mode: ChainMode, block_size: usize) -> Self {
        assert!(drives > 0, "an array needs at least one data drive");
        assert!(block_size > 0, "blocks must be non-empty");
        EntangledArray {
            drives,
            layout,
            chain: EntangledChain::new(mode, block_size),
            store: MemStore::new(),
            failed_drives: std::collections::HashSet::new(),
        }
    }

    /// Number of data drives (the parity tier has the same count, giving
    /// mirroring's 100% space overhead).
    pub fn drives(&self) -> u32 {
        self.drives
    }

    /// Blocks written so far.
    pub fn written(&self) -> u64 {
        self.chain.data_written()
    }

    /// The underlying chain scheme (drive-failure scenarios can run it
    /// through the generic `SchemePlane` and repair planners directly).
    pub fn scheme(&self) -> &EntangledChain {
        &self.chain
    }

    /// The typed §IV.B.1 warning for open chains: the tail pair has a
    /// single repair tuple. `None` for closed chains (and empty arrays).
    pub fn extremity_warning(&self) -> Option<ExtremityWarning> {
        self.chain.extremity_warning(self.written())
    }

    /// Data drive holding data block `i` (1-based lattice position).
    pub fn data_drive_of(&self, i: u64) -> DriveId {
        match self.layout {
            Layout::FullPartition { blocks_per_drive } => {
                DriveId((((i - 1) / blocks_per_drive) % self.drives as u64) as u32)
            }
            Layout::Striping => DriveId(((i - 1) % self.drives as u64) as u32),
        }
    }

    /// Parity drive holding parity `p_{i,i+1}`; parity drives are numbered
    /// after the data drives.
    pub fn parity_drive_of(&self, i: u64) -> DriveId {
        let d = self.data_drive_of(i);
        DriveId(self.drives + d.0)
    }

    /// Drive holding any block.
    pub fn drive_of(&self, id: BlockId) -> DriveId {
        match id {
            BlockId::Data(NodeId(i)) => self.data_drive_of(i),
            BlockId::Parity(e) => self.parity_drive_of(e.left.0),
            other => panic!("{other} is not an entangled-array block"),
        }
    }

    /// Appends a data block to the array, entangling it into the chain.
    ///
    /// # Panics
    ///
    /// Panics after [`Self::seal`] (the array is append-only and a closed
    /// chain cannot grow) or on a block-size mismatch.
    pub fn write(&mut self, data: Block) -> u64 {
        assert!(!self.chain.is_sealed(), "array is sealed");
        assert_eq!(data.len(), self.chain.block_size(), "block size mismatch");
        self.chain
            .encode_batch(std::slice::from_ref(&data), &self.store)
            .expect("size asserted above");
        self.written()
    }

    /// Seals the array. In closed mode this tangles the chain through the
    /// first data block once more, storing the closing parity
    /// `p_close = d_1 XOR p_{n,n+1}` under the edge id `(H, n+1)`.
    pub fn seal(&mut self) {
        self.chain.seal(&self.store).expect("sealing never fails");
    }

    /// Ids of every block the array holds when healthy.
    pub fn all_blocks(&self) -> Vec<BlockId> {
        self.chain.stored_ids()
    }

    /// Drops a single block, simulating an unreadable sector (as opposed to
    /// a whole-drive failure). The block becomes a repair target for
    /// [`Self::rebuild`].
    pub fn remove_block(&mut self, id: BlockId) -> bool {
        self.store.remove(id)
    }

    /// Marks a drive failed: its blocks become unreadable (contents are
    /// dropped, as a real drive replacement would).
    pub fn fail_drive(&mut self, drive: DriveId) {
        self.failed_drives.insert(drive);
        for id in self.all_blocks() {
            if self.effective_drive(id) == drive {
                self.store.remove(id);
            }
        }
    }

    /// Reads a block, if its drive is healthy and the block is intact.
    pub fn get(&self, id: BlockId) -> Result<Block, StoreError> {
        if self.failed_drives.contains(&self.effective_drive(id)) {
            return Err(StoreError::NotFound(id));
        }
        self.store.get(id)
    }

    /// Rebuilds every missing block (e.g. after [`Self::fail_drive`] and a
    /// drive replacement) from the chain, through the scheme's generic
    /// round-based [`RedundancyScheme::repair_missing`] planner. Returns
    /// the ids that remain unrecoverable.
    pub fn rebuild(&mut self) -> Vec<BlockId> {
        self.failed_drives.clear();
        let targets: Vec<BlockId> = self
            .all_blocks()
            .into_iter()
            .filter(|&id| !self.store.contains(id))
            .collect();
        self.chain
            .repair_missing(&self.store, &targets, self.written())
            .unrecovered
    }

    fn effective_drive(&self, id: BlockId) -> DriveId {
        // The closing parity lives with the last regular parity's drive.
        if let BlockId::Parity(EdgeId {
            left: NodeId(i), ..
        }) = id
        {
            if i == self.written() + 1 {
                return self.parity_drive_of(self.written().max(1));
            }
        }
        self.drive_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::StrandClass;

    fn parity_id(i: u64) -> BlockId {
        BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(i)))
    }

    fn filled(
        drives: u32,
        layout: Layout,
        mode: ChainMode,
        blocks: u64,
    ) -> (EntangledArray, Vec<Block>) {
        let mut arr = EntangledArray::new(drives, layout, mode, 16);
        let data: Vec<Block> = (0..blocks)
            .map(|k| {
                Block::from_vec(
                    (0..16)
                        .map(|b| (k as u8).wrapping_mul(13).wrapping_add(b))
                        .collect(),
                )
            })
            .collect();
        for d in &data {
            arr.write(d.clone());
        }
        arr.seal();
        (arr, data)
    }

    #[test]
    fn striping_spreads_consecutive_blocks() {
        let (arr, _) = filled(4, Layout::Striping, ChainMode::Open, 40);
        assert_eq!(arr.data_drive_of(1), DriveId(0));
        assert_eq!(arr.data_drive_of(2), DriveId(1));
        assert_eq!(arr.data_drive_of(5), DriveId(0));
        assert_eq!(arr.parity_drive_of(1), DriveId(4));
    }

    #[test]
    fn full_partition_fills_drives_in_order() {
        let (arr, _) = filled(
            4,
            Layout::FullPartition {
                blocks_per_drive: 10,
            },
            ChainMode::Open,
            40,
        );
        assert_eq!(arr.data_drive_of(1), DriveId(0));
        assert_eq!(arr.data_drive_of(10), DriveId(0));
        assert_eq!(arr.data_drive_of(11), DriveId(1));
        assert_eq!(arr.data_drive_of(40), DriveId(3));
    }

    #[test]
    fn single_drive_failure_rebuilds_fully() {
        for layout in [
            Layout::Striping,
            Layout::FullPartition {
                blocks_per_drive: 10,
            },
        ] {
            for mode in [ChainMode::Open, ChainMode::Closed] {
                let (mut arr, data) = filled(4, layout, mode, 40);
                arr.fail_drive(DriveId(1)); // a data drive
                let unrecovered = arr.rebuild();
                assert!(
                    unrecovered.is_empty(),
                    "{layout:?} {mode:?}: {unrecovered:?}"
                );
                for (k, d) in data.iter().enumerate() {
                    assert_eq!(&arr.get(BlockId::Data(NodeId(k as u64 + 1))).unwrap(), d);
                }
            }
        }
    }

    #[test]
    fn parity_drive_failure_rebuilds_fully() {
        let (mut arr, _) = filled(4, Layout::Striping, ChainMode::Closed, 40);
        arr.fail_drive(DriveId(6)); // a parity drive
        assert!(arr.rebuild().is_empty());
    }

    /// The open chain's extremity weakness: losing the last data block and
    /// its (only) parity tuple is fatal; the closed ring survives it.
    #[test]
    fn closed_chain_fixes_the_extremity() {
        // Open: {d_n, p_n} is a dead pair (p_n has no right tuple).
        let (mut open, _) = filled(2, Layout::Striping, ChainMode::Open, 10);
        open.store.remove(BlockId::Data(NodeId(10)));
        open.store.remove(parity_id(10));
        let unrecovered = open.rebuild();
        assert_eq!(unrecovered.len(), 2, "open chain loses the tail");
        // The weakness is announced, not silent: the typed warning names
        // exactly the pair that died.
        let warn = open.extremity_warning().expect("open chains warn");
        assert_eq!(warn.exposed, unrecovered);

        // Closed: p_n repairs through the ring (d_1, p_close), then d_n.
        let (mut closed, data) = filled(2, Layout::Striping, ChainMode::Closed, 10);
        closed.store.remove(BlockId::Data(NodeId(10)));
        closed.store.remove(parity_id(10));
        assert!(closed.rebuild().is_empty(), "closed chain survives");
        assert_eq!(closed.get(BlockId::Data(NodeId(10))).unwrap(), data[9]);
        assert!(closed.extremity_warning().is_none());
    }

    /// The ring also protects the head: d_1 gains a second repair tuple.
    #[test]
    fn closed_chain_gives_head_two_tuples() {
        let (mut arr, data) = filled(2, Layout::Striping, ChainMode::Closed, 10);
        // Remove d_1 and its first parity: the open-chain tuple is gone.
        arr.store.remove(BlockId::Data(NodeId(1)));
        arr.store.remove(parity_id(1));
        let unrecovered = arr.rebuild();
        assert!(unrecovered.is_empty(), "{unrecovered:?}");
        assert_eq!(arr.get(BlockId::Data(NodeId(1))).unwrap(), data[0]);
    }

    #[test]
    fn adjacent_node_pair_with_shared_edge_is_fatal() {
        // Fig 6 primitive form I holds for arrays too: d_i, d_{i+1} and the
        // shared parity p_i form a dead triple.
        let (mut arr, _) = filled(2, Layout::Striping, ChainMode::Closed, 20);
        arr.store.remove(BlockId::Data(NodeId(5)));
        arr.store.remove(BlockId::Data(NodeId(6)));
        arr.store.remove(parity_id(5));
        assert_eq!(arr.rebuild().len(), 3);
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn writes_after_seal_rejected() {
        let (mut arr, _) = filled(2, Layout::Striping, ChainMode::Closed, 4);
        arr.write(Block::zero(16));
    }

    #[test]
    fn mirror_equivalent_space_overhead() {
        // Equal numbers of data and parity drives: one parity per data
        // block, like mirroring.
        let (arr, _) = filled(3, Layout::Striping, ChainMode::Open, 30);
        let blocks = arr.all_blocks();
        let data = blocks.iter().filter(|b| b.is_data()).count();
        let parity = blocks.iter().filter(|b| b.is_parity()).count();
        assert_eq!(data, parity);
    }

    /// The scheme-driven rebuild must agree, block for block, with the
    /// legacy direct-decoder fixpoint loop the array used to carry.
    #[test]
    fn scheme_rebuild_matches_legacy_fixpoint() {
        /// The pre-refactor repair logic, kept verbatim as a test oracle.
        fn legacy_try_repair(arr: &EntangledArray, id: BlockId) -> Option<Block> {
            let n = arr.written();
            let closing = arr.chain.is_sealed() && arr.chain.mode() == ChainMode::Closed;
            let bs = arr.chain.block_size();
            let get = |q: BlockId| arr.store.get(q).ok();
            match id {
                BlockId::Data(NodeId(i)) => {
                    if let Some(right) = get(parity_id(i)) {
                        let left = if i == 1 {
                            Some(Block::zero(bs))
                        } else {
                            get(parity_id(i - 1))
                        };
                        if let Some(left) = left {
                            return Some(left.xor(&right).expect("sizes match"));
                        }
                    }
                    if closing && i == 1 {
                        if let (Some(pn), Some(pc)) = (get(parity_id(n)), get(parity_id(n + 1))) {
                            return Some(pn.xor(&pc).expect("sizes match"));
                        }
                    }
                    None
                }
                BlockId::Parity(EdgeId {
                    left: NodeId(i), ..
                }) => {
                    let left_data = if i == n + 1 {
                        get(BlockId::Data(NodeId(1)))
                    } else {
                        get(BlockId::Data(NodeId(i)))
                    };
                    if let Some(d) = left_data {
                        let prev = if i == 1 {
                            Some(Block::zero(bs))
                        } else {
                            get(parity_id(i - 1))
                        };
                        if let Some(prev) = prev {
                            return Some(d.xor(&prev).expect("sizes match"));
                        }
                    }
                    let (nd, np) = if i < n {
                        (get(BlockId::Data(NodeId(i + 1))), get(parity_id(i + 1)))
                    } else if i == n && closing {
                        (get(BlockId::Data(NodeId(1))), get(parity_id(n + 1)))
                    } else {
                        (None, None)
                    };
                    if let (Some(d), Some(p)) = (nd, np) {
                        return Some(d.xor(&p).expect("sizes match"));
                    }
                    None
                }
                _ => None,
            }
        }

        fn legacy_rebuild(arr: &mut EntangledArray) -> Vec<BlockId> {
            arr.failed_drives.clear();
            let mut missing: Vec<BlockId> = arr
                .all_blocks()
                .into_iter()
                .filter(|&id| !arr.store.contains(id))
                .collect();
            loop {
                let mut progressed = false;
                let mut still = Vec::new();
                for &id in &missing {
                    match legacy_try_repair(arr, id) {
                        Some(b) => {
                            arr.store.put(id, b);
                            progressed = true;
                        }
                        None => still.push(id),
                    }
                }
                missing = still;
                if missing.is_empty() || !progressed {
                    return missing;
                }
            }
        }

        // A deterministic sweep of damage patterns, both chain modes.
        for mode in [ChainMode::Open, ChainMode::Closed] {
            for pattern in 0u64..32 {
                let build = || {
                    let (arr, _) = filled(4, Layout::Striping, mode, 30);
                    // Pseudo-random multi-failure pattern over the universe.
                    let mut state = pattern.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    for id in arr.all_blocks() {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if (state >> 33) % 100 < 35 {
                            arr.store.remove(id);
                        }
                    }
                    arr
                };
                let mut scheme_arr = build();
                let mut legacy_arr = build();
                let mut via_scheme = scheme_arr.rebuild();
                let mut via_legacy = legacy_rebuild(&mut legacy_arr);
                via_scheme.sort();
                via_legacy.sort();
                assert_eq!(via_scheme, via_legacy, "{mode} pattern {pattern}");
                for id in scheme_arr.all_blocks() {
                    assert_eq!(
                        scheme_arr.store.get(id).ok(),
                        legacy_arr.store.get(id).ok(),
                        "{mode} pattern {pattern}: {id}"
                    );
                }
            }
        }
    }
}
