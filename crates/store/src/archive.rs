//! A file-level archival API over any redundancy scheme and any backend.
//!
//! The paper positions AE codes as codes "to archive data in unreliable
//! environments"; this module is the layer a user actually touches: an
//! append-only [`Archive`] that chunks files into blocks, keeps a manifest
//! (name → dense data extent + length + CRC32), and serves reads and
//! repairs. It is doubly generic:
//!
//! * **over the scheme** — any `Arc<dyn RedundancyScheme>`: alpha
//!   entanglement, Reed-Solomon, replication, the §IV.B entangled chain, a
//!   namespaced geo lattice. `put` goes through the batch-first
//!   [`RedundancyScheme::encode_batch`], degraded `get` through the
//!   error-typed [`RedundancyScheme::repair_block`] fast path and, for
//!   chained reconstructions, the round-based planners into a read-side
//!   [`Overlay`]; `scrub`/`verify_all` use the same generic machinery — so
//!   an unreadable file reports *which* blocks were unavailable,
//!   whatever the code.
//! * **over the backend** — any [`BlockRepo`] of the unified `ae_api`
//!   family: a local [`crate::MemStore`], a [`crate::DistributedStore`]
//!   with failing locations, a two-tier [`crate::TieredStore`], a
//!   fault-injecting [`crate::FaultyStore`] in a disaster drill.
//!
//! [`Archive::new`] remains the thin AE convenience constructor
//! (config + block size), byte-compatible with the archive this module
//! shipped before it became scheme-generic.
//!
//! Schemes that buffer redundancy (Reed-Solomon's partial stripe) leave
//! the newest blocks unprotected until the stripe fills or the archive is
//! sealed; [`Archive::seal`] flushes every buffer and freezes the archive
//! (further `put`s error), which is the natural end state of an archival
//! workload.

use ae_api::{AeError, BlockRepo, BlockSource, Overlay, RedundancyScheme, RepairError};
use ae_blocks::{crc32, Block, BlockId};
use ae_core::Code;
use ae_lattice::Config;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Manifest entry for one archived file: the file's **dense data extent**
/// — its index range in the archive's data-block write order, which every
/// scheme shares — plus length and checksum. The extent indexes into the
/// archive's write-order id log, so entries stay scheme-agnostic even for
/// schemes with namespaced ids (the geo lattice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// 0-based index of the file's first data block in write order.
    pub first_block: u64,
    /// Number of data blocks.
    pub block_count: u64,
    /// Original length in bytes (the tail block is zero-padded).
    pub byte_len: usize,
    /// CRC32 of the original contents, checked on every read.
    pub crc: u32,
}

/// Errors from archive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// No entry under that name.
    UnknownFile(String),
    /// A block could not be fetched or repaired; the wrapped error names
    /// the tuple members that were unavailable.
    BlockUnavailable {
        /// The block the read needed.
        id: BlockId,
        /// Why the repair failed.
        source: RepairError,
    },
    /// The reassembled file failed its manifest checksum.
    ChecksumMismatch {
        /// File name.
        name: String,
        /// Expected CRC32 from the manifest.
        expected: u32,
        /// CRC32 of the bytes actually reassembled.
        actual: u32,
    },
    /// A name was archived twice.
    DuplicateName(String),
    /// A `put` after [`Archive::seal`]: sealed archives are frozen
    /// (buffered-redundancy schemes cannot soundly grow past their flush).
    Sealed(String),
    /// The scheme rejected the encode (e.g. a block-size change against a
    /// buffered partial stripe).
    Encode(AeError),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::UnknownFile(n) => write!(f, "no archived file named {n:?}"),
            ArchiveError::BlockUnavailable { id, source } => {
                write!(f, "block {id} unavailable and unrepairable ({source})")
            }
            ArchiveError::ChecksumMismatch { name, expected, actual } => write!(
                f,
                "file {name:?} failed verification: manifest crc {expected:#010x}, got {actual:#010x}"
            ),
            ArchiveError::DuplicateName(n) => write!(f, "file {n:?} already archived"),
            ArchiveError::Sealed(n) => {
                write!(f, "archive is sealed; cannot archive {n:?}")
            }
            ArchiveError::Encode(e) => write!(f, "encode failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::BlockUnavailable { source, .. } => Some(source),
            ArchiveError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

/// An append-only archive over any scheme and any backend.
///
/// # Examples
///
/// The legacy AE constructor:
///
/// ```
/// use ae_store::archive::Archive;
/// use ae_store::MemStore;
/// use ae_lattice::Config;
/// use std::sync::Arc;
///
/// let store = Arc::new(MemStore::new());
/// let mut ar = Archive::new(Config::new(2, 1, 2).unwrap(), 64, store);
/// ar.put("notes.txt", b"alpha entanglement").unwrap();
/// assert_eq!(ar.get("notes.txt").unwrap(), b"alpha entanglement");
/// ```
///
/// The same archive over Reed-Solomon — nothing else changes:
///
/// ```
/// use ae_store::archive::Archive;
/// use ae_store::MemStore;
/// use ae_baselines::ReedSolomon;
/// use std::sync::Arc;
///
/// let scheme = Arc::new(ReedSolomon::new(4, 2).unwrap());
/// let mut ar = Archive::with_scheme(scheme, 64, Arc::new(MemStore::new()));
/// ar.put("notes.txt", b"maximum distance separable").unwrap();
/// ar.seal().unwrap(); // flush the partial stripe
/// assert_eq!(ar.get("notes.txt").unwrap(), b"maximum distance separable");
/// ```
pub struct Archive<B: BlockRepo + ?Sized = dyn BlockRepo> {
    scheme: Arc<dyn RedundancyScheme>,
    store: Arc<B>,
    block_size: usize,
    manifest: BTreeMap<String, Entry>,
    /// Write-order log of data-block ids (the manifest extents index into
    /// it); schemes with namespaced ids stay opaque to the archive.
    data_ids: Vec<BlockId>,
    /// Every id written through this archive (data + redundancy + sealed),
    /// in write order — the scrub/repair target universe. Exactly what the
    /// backend should hold, honouring buffered redundancy.
    stored_ids: Vec<BlockId>,
    sealed: bool,
}

impl<B: BlockRepo + ?Sized> Archive<B> {
    /// Creates an empty **alpha-entanglement** archive writing
    /// `block_size`-byte blocks into `store` — the thin AE convenience
    /// constructor, kept signature-compatible with the pre-generic
    /// archive.
    pub fn new(cfg: Config, block_size: usize, store: Arc<B>) -> Self {
        Self::with_scheme(Arc::new(Code::new(cfg, block_size)), block_size, store)
    }

    /// Creates an empty archive over any scheme: files are chunked into
    /// `block_size`-byte blocks and encoded through `scheme` into `store`.
    ///
    /// The scheme must be fresh (nothing written through it yet): the
    /// archive owns the write-order log that maps manifest extents to
    /// block ids.
    ///
    /// # Panics
    ///
    /// Panics if the scheme has already encoded data.
    pub fn with_scheme(
        scheme: Arc<dyn RedundancyScheme>,
        block_size: usize,
        store: Arc<B>,
    ) -> Self {
        assert_eq!(scheme.data_written(), 0, "archive schemes must start fresh");
        assert!(block_size > 0, "blocks must be non-empty");
        Archive {
            scheme,
            store,
            block_size,
            manifest: BTreeMap::new(),
            data_ids: Vec::new(),
            stored_ids: Vec::new(),
            sealed: false,
        }
    }

    /// The underlying backend.
    pub fn store(&self) -> &Arc<B> {
        &self.store
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Arc<dyn RedundancyScheme> {
        &self.scheme
    }

    /// Chunk size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Data blocks written so far (all files).
    pub fn blocks_written(&self) -> u64 {
        self.data_ids.len() as u64
    }

    /// Whether [`Archive::seal`] has been called.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Names currently archived, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.manifest.keys().map(String::as_str)
    }

    /// Manifest entry for a file.
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.manifest.get(name)
    }

    /// Every id written through this archive (data + redundancy + sealed),
    /// in write order — exactly what the backend should hold right now.
    /// Disaster drills pick victims from this list; [`Archive::scrub`]
    /// repairs against it.
    pub fn stored_ids(&self) -> &[BlockId] {
        &self.stored_ids
    }

    /// The write-order log of data-block ids; manifest extents
    /// ([`Entry::first_block`]) index into it.
    pub fn data_ids(&self) -> &[BlockId] {
        &self.data_ids
    }

    /// Id of the data block at write-order index `k`.
    fn data_id(&self, k: u64) -> BlockId {
        self.data_ids[k as usize]
    }

    /// Archives a file: chunks, encodes the whole file as one batch
    /// through the scheme, stores data + redundancy.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names and on sealed archives; archives are
    /// append-only (§III: "the only assumption is that data are stored
    /// permanently").
    pub fn put(&mut self, name: &str, contents: &[u8]) -> Result<Entry, ArchiveError> {
        if self.sealed {
            return Err(ArchiveError::Sealed(name.to_string()));
        }
        if self.manifest.contains_key(name) {
            return Err(ArchiveError::DuplicateName(name.to_string()));
        }
        let bs = self.block_size;
        // Even empty files occupy one (zero) block so they have an extent.
        let blocks: Vec<Block> = if contents.is_empty() {
            vec![Block::zero(bs)]
        } else {
            contents
                .chunks(bs)
                .map(|chunk| {
                    let mut bytes = chunk.to_vec();
                    bytes.resize(bs, 0);
                    Block::from_vec(bytes)
                })
                .collect()
        };
        let first_block = self.data_ids.len() as u64;
        let report = self
            .scheme
            .encode_batch(&blocks, &self.store)
            .map_err(ArchiveError::Encode)?;
        self.data_ids
            .extend(report.ids.iter().copied().filter(|id| id.is_data()));
        self.stored_ids.extend(report.ids);
        let entry = Entry {
            first_block,
            block_count: blocks.len() as u64,
            byte_len: contents.len(),
            crc: crc32(contents),
        };
        self.manifest.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Flushes any buffered redundancy (a partial Reed-Solomon stripe, a
    /// closed chain's closing parity) and freezes the archive: further
    /// `put`s report [`ArchiveError::Sealed`]. Idempotent; returns the ids
    /// the flush stored.
    ///
    /// # Errors
    ///
    /// Propagates scheme flush failures.
    pub fn seal(&mut self) -> Result<Vec<BlockId>, ArchiveError> {
        if self.sealed {
            return Ok(Vec::new());
        }
        let flushed = self
            .scheme
            .seal(&self.store)
            .map_err(ArchiveError::Encode)?;
        self.stored_ids.extend(flushed.iter().copied());
        self.sealed = true;
        Ok(flushed)
    }

    /// Reads a file back, repairing missing blocks on the fly (a degraded
    /// read; repaired blocks are **not** written back — use
    /// [`Self::scrub`]), and verifying the manifest checksum.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, ArchiveError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ArchiveError::UnknownFile(name.to_string()))?;
        let mut out = Vec::with_capacity(entry.byte_len);
        for k in entry.first_block..entry.first_block + entry.block_count {
            let block = self.fetch_or_repair(self.data_id(k))?;
            out.extend_from_slice(block.as_slice());
        }
        out.truncate(entry.byte_len);
        let actual = crc32(&out);
        if actual != entry.crc {
            return Err(ArchiveError::ChecksumMismatch {
                name: name.to_string(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(out)
    }

    /// Verifies every archived file end to end; returns the names that
    /// fail (unrepairable blocks or checksum mismatches).
    pub fn verify_all(&self) -> Vec<String> {
        self.manifest
            .keys()
            .filter(|name| self.get(name).is_err())
            .cloned()
            .collect()
    }

    /// Scrubs the archive: round-based repair of every missing block the
    /// backend should hold, written back to the backend. Returns how many
    /// blocks were restored.
    pub fn scrub(&self) -> u64 {
        let store: &B = &self.store;
        let repo: &dyn BlockRepo = &store;
        let summary =
            self.scheme
                .repair_missing(repo, &self.stored_ids, self.scheme.data_written());
        summary.total_repaired() as u64
    }

    fn fetch_or_repair(&self, id: BlockId) -> Result<Block, ArchiveError> {
        if let Some(b) = self.store.fetch(id) {
            return Ok(b);
        }
        let store: &B = &self.store;
        let source: &dyn BlockSource = &store;
        let written = self.scheme.data_written();
        // Fast path: a single repair option from currently available
        // blocks (one XOR for entanglements, one stripe decode for RS).
        let fast_err = match self.scheme.repair_block(source, id, written) {
            Ok(b) => return Ok(b),
            Err(e) => e,
        };
        // Slow path: round-based repair into a read-side overlay, so
        // chained reconstructions work without mutating the backend
        // (degraded reads stay read-only).
        let overlay = Overlay::new(source);
        self.scheme
            .repair_missing(&overlay, &self.stored_ids, written);
        overlay
            .patch
            .remove(&id)
            .ok_or(ArchiveError::BlockUnavailable {
                id,
                source: fast_err,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use ae_blocks::NodeId;

    fn data_id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn archive() -> Archive<MemStore> {
        Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::new(MemStore::new()))
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(seed).wrapping_add(3))
            .collect()
    }

    #[test]
    fn put_get_roundtrip_multiple_files() {
        let mut ar = archive();
        let a = payload(1000, 7);
        let b = payload(64, 11); // exactly one block
        let c = payload(65, 13); // one block + 1 byte
        ar.put("a", &a).unwrap();
        ar.put("b", &b).unwrap();
        ar.put("c", &c).unwrap();
        assert_eq!(ar.get("a").unwrap(), a);
        assert_eq!(ar.get("b").unwrap(), b);
        assert_eq!(ar.get("c").unwrap(), c);
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(ar.entry("b").unwrap().block_count, 1);
        assert_eq!(ar.entry("c").unwrap().block_count, 2);
        assert_eq!(ar.entry("a").unwrap().first_block, 0);
        assert_eq!(ar.entry("b").unwrap().first_block, 16);
    }

    #[test]
    fn empty_file_supported() {
        let mut ar = archive();
        ar.put("empty", b"").unwrap();
        assert_eq!(ar.get("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(ar.entry("empty").unwrap().block_count, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ar = archive();
        ar.put("x", b"1").unwrap();
        assert!(matches!(
            ar.put("x", b"2"),
            Err(ArchiveError::DuplicateName(_))
        ));
    }

    #[test]
    fn sealed_archives_reject_puts() {
        let mut ar = archive();
        ar.put("x", b"1").unwrap();
        assert!(ar.seal().is_ok());
        assert!(ar.is_sealed());
        assert!(matches!(ar.put("y", b"2"), Err(ArchiveError::Sealed(_))));
        assert_eq!(ar.seal().unwrap(), Vec::new(), "idempotent");
        assert_eq!(ar.get("x").unwrap(), b"1");
    }

    #[test]
    fn unknown_file_reported() {
        let ar = archive();
        assert!(matches!(ar.get("nope"), Err(ArchiveError::UnknownFile(_))));
    }

    #[test]
    fn degraded_read_repairs_on_the_fly() {
        let mut ar = archive();
        let data = payload(640, 5);
        let entry = ar.put("f", &data).unwrap();
        // Drop three data blocks behind the archive's back.
        for k in [0, 4, 9] {
            ar.store().remove(data_id(entry.first_block + k + 1));
        }
        assert_eq!(ar.get("f").unwrap(), data, "read-time repair");
        // Blocks remain missing until scrubbed.
        assert!(!ar.store().contains(data_id(1)));
        let restored = ar.scrub();
        assert_eq!(restored, 3);
        assert!(ar.store().contains(data_id(1)));
        assert_eq!(ar.scrub(), 0, "idempotent");
    }

    #[test]
    fn scrub_restores_parities_too() {
        let mut ar = archive();
        ar.put("f", &payload(640, 9)).unwrap();
        let killed = 5;
        for i in 1..=killed {
            ar.store().remove(BlockId::Parity(ae_blocks::EdgeId::new(
                ae_blocks::StrandClass::Horizontal,
                NodeId(i),
            )));
        }
        assert_eq!(ar.scrub(), killed);
        assert!(ar.verify_all().is_empty());
    }

    #[test]
    fn verify_all_flags_dead_files() {
        let mut ar = Archive::new(Config::new(2, 1, 1).unwrap(), 32, Arc::new(MemStore::new()));
        ar.put("ok", &payload(100, 3)).unwrap();
        let entry = ar.put("doomed", &payload(100, 4)).unwrap();
        // Erase a Fig 7 A dead pattern inside "doomed": two adjacent nodes
        // plus both parallel edges between them.
        let i = entry.first_block + 2; // 1-based node of the second block
        ar.store().remove(data_id(i));
        ar.store().remove(data_id(i + 1));
        for class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
        ] {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        assert_eq!(ar.verify_all(), vec!["doomed".to_string()]);
        assert!(ar.get("ok").is_ok());
        // The failure names the block and carries the repair detail.
        match ar.get("doomed") {
            Err(ArchiveError::BlockUnavailable { id, source }) => {
                assert!(id.is_data());
                assert!(!source.missing_blocks().is_empty());
            }
            other => panic!("expected BlockUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn degraded_read_chains_repairs_when_tuples_are_broken() {
        // Erase a data block AND parts of all its tuples, leaving a repair
        // chain: the single-XOR fast path fails, the overlay rounds win.
        let mut ar = archive();
        let data = payload(640, 17);
        let entry = ar.put("f", &data).unwrap();
        let i = entry.first_block + 5; // 1-based node of the fifth block
        ar.store().remove(data_id(i));
        // Break every pp-tuple of d_i by removing one parity per class…
        for &class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
            ae_blocks::StrandClass::LeftHanded,
        ]
        .iter()
        {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        // …the parities themselves are repairable (their dp-tuples are
        // intact), so a two-round read still reconstructs the file.
        assert_eq!(ar.get("f").unwrap(), data);
        // And the backend was not mutated by the read.
        assert!(!ar.store().contains(data_id(i)));
    }

    #[test]
    fn works_over_a_distributed_store_with_outages() {
        use crate::cluster::LocationId;
        use crate::distributed::DistributedStore;
        use crate::placement::Placement;

        let store = Arc::new(DistributedStore::new(30, Placement::Random { seed: 4 }));
        let mut ar = Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::clone(&store));
        let data = payload(3000, 21);
        ar.put("big", &data).unwrap();
        store.with_cluster(|c| {
            for l in [2, 9, 16, 23] {
                c.fail(LocationId(l));
            }
        });
        assert_eq!(ar.get("big").unwrap(), data, "degraded read through outage");
    }

    #[test]
    fn type_erased_backend_works() {
        // Archive<dyn BlockRepo>: backend chosen at runtime.
        let store: Arc<dyn BlockRepo> = Arc::new(MemStore::new());
        let mut ar: Archive = Archive::new(Config::new(2, 1, 2).unwrap(), 32, store);
        let data = payload(200, 29);
        ar.put("f", &data).unwrap();
        ar.store().remove(data_id(2));
        assert_eq!(ar.get("f").unwrap(), data);
    }

    #[test]
    fn error_display() {
        let e = ArchiveError::ChecksumMismatch {
            name: "f".into(),
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("verification"));
        assert!(ArchiveError::UnknownFile("x".into())
            .to_string()
            .contains("x"));
        assert!(ArchiveError::Sealed("y".into())
            .to_string()
            .contains("sealed"));
    }
}
