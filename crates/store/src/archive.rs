//! A file-level archival API over an entangled block store.
//!
//! The paper positions AE codes as codes "to archive data in unreliable
//! environments"; this module is the layer a user actually touches: an
//! append-only [`Archive`] that chunks files into lattice blocks, keeps a
//! manifest (name → lattice extent + length + CRC32), and serves reads and
//! repairs. Data and parities live in any [`BlockStore`], so the archive
//! runs equally over a local [`crate::MemStore`] or a
//! [`crate::DistributedStore`] with failing locations.
//!
//! Files are encoded through [`Code::encode_batch`] — the batch-first hot
//! path — and degraded reads repair through the error-typed decoder, so an
//! unreadable file reports *which* blocks were unavailable.

use crate::store::{BlockStore, StoreRepo};
use ae_api::{BlockSource, Overlay, RedundancyScheme, RepairError};
use ae_blocks::{crc32, Block, BlockId, NodeId};
use ae_core::{decoder, Code};
use ae_lattice::Config;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Manifest entry for one archived file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// First lattice position of the file's blocks.
    pub first_node: u64,
    /// Number of data blocks.
    pub block_count: u64,
    /// Original length in bytes (the tail block is zero-padded).
    pub byte_len: usize,
    /// CRC32 of the original contents, checked on every read.
    pub crc: u32,
}

/// Errors from archive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// No entry under that name.
    UnknownFile(String),
    /// A block could not be fetched or repaired; the wrapped error names
    /// the tuple members that were unavailable.
    BlockUnavailable {
        /// The block the read needed.
        id: BlockId,
        /// Why the repair failed.
        source: RepairError,
    },
    /// The reassembled file failed its manifest checksum.
    ChecksumMismatch {
        /// File name.
        name: String,
        /// Expected CRC32 from the manifest.
        expected: u32,
        /// CRC32 of the bytes actually reassembled.
        actual: u32,
    },
    /// A name was archived twice.
    DuplicateName(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::UnknownFile(n) => write!(f, "no archived file named {n:?}"),
            ArchiveError::BlockUnavailable { id, source } => {
                write!(f, "block {id} unavailable and unrepairable ({source})")
            }
            ArchiveError::ChecksumMismatch { name, expected, actual } => write!(
                f,
                "file {name:?} failed verification: manifest crc {expected:#010x}, got {actual:#010x}"
            ),
            ArchiveError::DuplicateName(n) => write!(f, "file {n:?} already archived"),
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::BlockUnavailable { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// An append-only entangled archive over any block store.
///
/// # Examples
///
/// ```
/// use ae_store::archive::Archive;
/// use ae_store::MemStore;
/// use ae_lattice::Config;
/// use std::sync::Arc;
///
/// let store = Arc::new(MemStore::new());
/// let mut ar = Archive::new(Config::new(2, 1, 2).unwrap(), 64, store);
/// ar.put("notes.txt", b"alpha entanglement").unwrap();
/// assert_eq!(ar.get("notes.txt").unwrap(), b"alpha entanglement");
/// ```
pub struct Archive<S: BlockStore> {
    code: Code,
    store: Arc<S>,
    manifest: BTreeMap<String, Entry>,
}

impl<S: BlockStore> Archive<S> {
    /// Creates an empty archive writing `block_size`-byte blocks into
    /// `store`.
    pub fn new(cfg: Config, block_size: usize, store: Arc<S>) -> Self {
        Archive {
            code: Code::new(cfg, block_size),
            store,
            manifest: BTreeMap::new(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The code in use.
    pub fn code(&self) -> &Code {
        &self.code
    }

    /// Data blocks written so far (all files).
    pub fn blocks_written(&self) -> u64 {
        self.code.written()
    }

    /// Names currently archived, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.manifest.keys().map(String::as_str)
    }

    /// Manifest entry for a file.
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.manifest.get(name)
    }

    /// Archives a file: chunks, entangles the whole file as one batch,
    /// stores data + parities.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names; archives are append-only (§III: "the only
    /// assumption is that data are stored permanently").
    pub fn put(&mut self, name: &str, contents: &[u8]) -> Result<Entry, ArchiveError> {
        if self.manifest.contains_key(name) {
            return Err(ArchiveError::DuplicateName(name.to_string()));
        }
        let bs = self.code.block_size();
        // Even empty files occupy one (zero) block so they have an extent.
        let blocks: Vec<Block> = if contents.is_empty() {
            vec![Block::zero(bs)]
        } else {
            contents
                .chunks(bs)
                .map(|chunk| {
                    let mut bytes = chunk.to_vec();
                    bytes.resize(bs, 0);
                    Block::from_vec(bytes)
                })
                .collect()
        };
        let mut sink = StoreRepo(&*self.store);
        let report = self
            .code
            .encode_batch(&blocks, &mut sink)
            .expect("chunks are resized to the block size");
        let entry = Entry {
            first_node: report.first_node,
            block_count: blocks.len() as u64,
            byte_len: contents.len(),
            crc: crc32(contents),
        };
        self.manifest.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Reads a file back, repairing missing blocks on the fly (a degraded
    /// read; repaired blocks are **not** written back — use
    /// [`Self::scrub`]), and verifying the manifest checksum.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, ArchiveError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ArchiveError::UnknownFile(name.to_string()))?;
        let mut out = Vec::with_capacity(entry.byte_len);
        for i in entry.first_node..entry.first_node + entry.block_count {
            let block = self.fetch_or_repair(BlockId::Data(NodeId(i)))?;
            out.extend_from_slice(block.as_slice());
        }
        out.truncate(entry.byte_len);
        let actual = crc32(&out);
        if actual != entry.crc {
            return Err(ArchiveError::ChecksumMismatch {
                name: name.to_string(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(out)
    }

    /// Verifies every archived file end to end; returns the names that
    /// fail (unrepairable blocks or checksum mismatches).
    pub fn verify_all(&self) -> Vec<String> {
        self.manifest
            .keys()
            .filter(|name| self.get(name).is_err())
            .cloned()
            .collect()
    }

    /// Every block the lattice should hold for the written extent.
    fn lattice_ids(&self) -> Vec<BlockId> {
        self.code.block_ids(self.code.written())
    }

    /// Scrubs the archive: round-based repair of every missing block the
    /// lattice should hold, writing restored blocks back to the store.
    /// Returns how many blocks were restored.
    pub fn scrub(&self) -> u64 {
        let targets = self.lattice_ids();
        let mut repo = StoreRepo(&*self.store);
        let summary = self
            .code
            .repair_missing(&mut repo, &targets, self.code.written());
        summary.total_repaired() as u64
    }

    fn fetch_or_repair(&self, id: BlockId) -> Result<Block, ArchiveError> {
        let source = StoreRepo(&*self.store);
        if let Some(b) = source.fetch(id) {
            return Ok(b);
        }
        // Fast path: one XOR from a complete tuple.
        let mut lookup = |q: BlockId| source.fetch(q);
        let fast = decoder::repair_block(
            self.code.config(),
            id,
            self.code.written(),
            self.code.zero_block(),
            &mut lookup,
        );
        let fast_err = match fast {
            Ok(r) => return Ok(r.block),
            Err(e) => e,
        };
        // Slow path: round-based repair into a read-side overlay, so
        // chained reconstructions work without mutating the store
        // (degraded reads stay read-only).
        let mut overlay = Overlay::new(&source);
        self.code
            .repair_missing(&mut overlay, &self.lattice_ids(), self.code.written());
        overlay
            .patch
            .remove(&id)
            .ok_or(ArchiveError::BlockUnavailable {
                id,
                source: fast_err,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn archive() -> Archive<MemStore> {
        Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::new(MemStore::new()))
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(seed).wrapping_add(3))
            .collect()
    }

    #[test]
    fn put_get_roundtrip_multiple_files() {
        let mut ar = archive();
        let a = payload(1000, 7);
        let b = payload(64, 11); // exactly one block
        let c = payload(65, 13); // one block + 1 byte
        ar.put("a", &a).unwrap();
        ar.put("b", &b).unwrap();
        ar.put("c", &c).unwrap();
        assert_eq!(ar.get("a").unwrap(), a);
        assert_eq!(ar.get("b").unwrap(), b);
        assert_eq!(ar.get("c").unwrap(), c);
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(ar.entry("b").unwrap().block_count, 1);
        assert_eq!(ar.entry("c").unwrap().block_count, 2);
    }

    #[test]
    fn empty_file_supported() {
        let mut ar = archive();
        ar.put("empty", b"").unwrap();
        assert_eq!(ar.get("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(ar.entry("empty").unwrap().block_count, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ar = archive();
        ar.put("x", b"1").unwrap();
        assert!(matches!(
            ar.put("x", b"2"),
            Err(ArchiveError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_file_reported() {
        let ar = archive();
        assert!(matches!(ar.get("nope"), Err(ArchiveError::UnknownFile(_))));
    }

    #[test]
    fn degraded_read_repairs_on_the_fly() {
        let mut ar = archive();
        let data = payload(640, 5);
        let entry = ar.put("f", &data).unwrap();
        // Drop three data blocks behind the archive's back.
        for k in [0, 4, 9] {
            ar.store()
                .remove(BlockId::Data(NodeId(entry.first_node + k)));
        }
        assert_eq!(ar.get("f").unwrap(), data, "read-time repair");
        // Blocks remain missing until scrubbed.
        assert!(!ar.store().contains(BlockId::Data(NodeId(entry.first_node))));
        let restored = ar.scrub();
        assert_eq!(restored, 3);
        assert!(ar.store().contains(BlockId::Data(NodeId(entry.first_node))));
        assert_eq!(ar.scrub(), 0, "idempotent");
    }

    #[test]
    fn scrub_restores_parities_too() {
        let mut ar = archive();
        ar.put("f", &payload(640, 9)).unwrap();
        let killed = 5;
        for i in 1..=killed {
            ar.store().remove(BlockId::Parity(ae_blocks::EdgeId::new(
                ae_blocks::StrandClass::Horizontal,
                NodeId(i),
            )));
        }
        assert_eq!(ar.scrub(), killed);
        assert!(ar.verify_all().is_empty());
    }

    #[test]
    fn verify_all_flags_dead_files() {
        let mut ar = Archive::new(Config::new(2, 1, 1).unwrap(), 32, Arc::new(MemStore::new()));
        ar.put("ok", &payload(100, 3)).unwrap();
        let entry = ar.put("doomed", &payload(100, 4)).unwrap();
        // Erase a Fig 7 A dead pattern inside "doomed": two adjacent nodes
        // plus both parallel edges between them.
        let i = entry.first_node + 1;
        ar.store().remove(BlockId::Data(NodeId(i)));
        ar.store().remove(BlockId::Data(NodeId(i + 1)));
        for class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
        ] {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        assert_eq!(ar.verify_all(), vec!["doomed".to_string()]);
        assert!(ar.get("ok").is_ok());
        // The failure names the block and carries the repair detail.
        match ar.get("doomed") {
            Err(ArchiveError::BlockUnavailable { id, source }) => {
                assert!(id.is_data());
                assert!(!source.missing_blocks().is_empty());
            }
            other => panic!("expected BlockUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn degraded_read_chains_repairs_when_tuples_are_broken() {
        // Erase a data block AND parts of all its tuples, leaving a repair
        // chain: the single-XOR fast path fails, the overlay rounds win.
        let mut ar = archive();
        let data = payload(640, 17);
        let entry = ar.put("f", &data).unwrap();
        let i = entry.first_node + 4;
        ar.store().remove(BlockId::Data(NodeId(i)));
        // Break every pp-tuple of d_i by removing one parity per class…
        for &class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
            ae_blocks::StrandClass::LeftHanded,
        ]
        .iter()
        {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        // …the parities themselves are repairable (their dp-tuples are
        // intact), so a two-round read still reconstructs the file.
        assert_eq!(ar.get("f").unwrap(), data);
        // And the store was not mutated by the read.
        assert!(!ar.store().contains(BlockId::Data(NodeId(i))));
    }

    #[test]
    fn works_over_a_distributed_store_with_outages() {
        use crate::cluster::LocationId;
        use crate::distributed::DistributedStore;
        use crate::placement::Placement;

        let store = Arc::new(DistributedStore::new(30, Placement::Random { seed: 4 }));
        let mut ar = Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::clone(&store));
        let data = payload(3000, 21);
        ar.put("big", &data).unwrap();
        store.with_cluster(|c| {
            for l in [2, 9, 16, 23] {
                c.fail(LocationId(l));
            }
        });
        assert_eq!(ar.get("big").unwrap(), data, "degraded read through outage");
    }

    #[test]
    fn error_display() {
        let e = ArchiveError::ChecksumMismatch {
            name: "f".into(),
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("verification"));
        assert!(ArchiveError::UnknownFile("x".into())
            .to_string()
            .contains("x"));
    }
}
