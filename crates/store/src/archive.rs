//! A file-level archival API over any redundancy scheme and any backend.
//!
//! The paper positions AE codes as codes "to archive data in unreliable
//! environments"; this module is the layer a user actually touches: an
//! append-only [`Archive`] that chunks files into blocks, keeps a manifest
//! (name → dense data extent + length + CRC32), and serves reads and
//! repairs. It is doubly generic:
//!
//! * **over the scheme** — any `Arc<dyn RedundancyScheme>`: alpha
//!   entanglement, Reed-Solomon, replication, the §IV.B entangled chain, a
//!   namespaced geo lattice. `put` goes through the batch-first
//!   [`RedundancyScheme::encode_batch`], degraded `get` through the
//!   error-typed [`RedundancyScheme::repair_block`] fast path and, for
//!   chained reconstructions, the round-based planners into a read-side
//!   [`Overlay`]; `scrub`/`verify_all` use the same generic machinery — so
//!   an unreadable file reports *which* blocks were unavailable,
//!   whatever the code.
//! * **over the backend** — any [`BlockRepo`] of the unified `ae_api`
//!   family: a local [`crate::MemStore`], a [`crate::DistributedStore`]
//!   with failing locations, a two-tier [`crate::TieredStore`], a
//!   fault-injecting [`crate::FaultyStore`] in a disaster drill.
//!
//! [`Archive::new`] remains the thin AE convenience constructor
//! (config + block size), byte-compatible with the archive this module
//! shipped before it became scheme-generic.
//!
//! Schemes that buffer redundancy (Reed-Solomon's partial stripe) leave
//! the newest blocks unprotected until the stripe fills or the archive is
//! sealed; [`Archive::seal`] flushes every buffer and freezes the archive
//! (further `put`s error), which is the natural end state of an archival
//! workload.
//!
//! # Crash recovery
//!
//! Archives are **crash-recoverable end to end**: every mutation appends
//! a versioned, checksummed record to an on-backend metadata journal (the
//! reserved [`BlockId::Meta`] namespace — see [`crate::meta`] for the
//! format) carrying the manifest entry, the ids written, and the scheme's
//! encoder-frontier snapshot. After a crash, [`Archive::open`] replays
//! the journal, restores the encoder frontier through
//! [`RedundancyScheme::restore_frontier`] (refetching in-flight blocks
//! from the backend, repairing them on the fly if the crash also took
//! hardware with it), and resumes `put`/`seal`/`scrub` exactly where the
//! crashed process stopped — a torn final journal record is detected and
//! truncated ([`Archive::torn_tail`]), while damaged metadata surfaces as
//! a typed [`RecoveryError`] naming what was lost.
//!
//! The metadata plane itself is **self-protecting** (see [`crate::meta`]
//! and [`MetaConfig`]): every journal record is written as an n-way copy
//! set across placement-distinct `Meta` ids, reads fall through copies
//! with per-copy CRC validation (surviving copies degrade a read instead
//! of failing it, reported via [`Archive::meta_damage`]), and past a
//! configurable threshold the journal is folded into a **checkpoint** —
//! manifest, write-order id log, sealed flag and encoder frontier in one
//! snapshot — so `open` replays checkpoint + suffix in O(checkpoint)
//! time however old the archive is, and the superseded prefix is
//! garbage-collected only after the checkpoint is durably committed.

use crate::meta::{
    meta_copy_id, pointer_id, CheckpointPayload, MetaConfig, MetaRecord, RecordError,
};
use ae_aio::{in_flight_window, windowed_map, Replay};
use ae_api::{
    AeError, AsyncHandle, BlockRepo, BlockSource, Overlay, RedundancyScheme, RepairError,
    StoreError,
};
use ae_blocks::{crc32, Block, BlockId, MetaId};
use ae_core::Code;
use ae_lattice::Config;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Manifest entry for one archived file: the file's **dense data extent**
/// — its index range in the archive's data-block write order, which every
/// scheme shares — plus length and checksum. The extent indexes into the
/// archive's write-order id log, so entries stay scheme-agnostic even for
/// schemes with namespaced ids (the geo lattice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// 0-based index of the file's first data block in write order.
    pub first_block: u64,
    /// Number of data blocks.
    pub block_count: u64,
    /// Original length in bytes (the tail block is zero-padded).
    pub byte_len: usize,
    /// CRC32 of the original contents, checked on every read.
    pub crc: u32,
}

/// Errors from archive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// No entry under that name.
    UnknownFile(String),
    /// A block could not be fetched or repaired; the wrapped error names
    /// the tuple members that were unavailable.
    BlockUnavailable {
        /// The block the read needed.
        id: BlockId,
        /// Why the repair failed.
        source: RepairError,
    },
    /// The reassembled file failed its manifest checksum.
    ChecksumMismatch {
        /// File name.
        name: String,
        /// Expected CRC32 from the manifest.
        expected: u32,
        /// CRC32 of the bytes actually reassembled.
        actual: u32,
    },
    /// A name was archived twice.
    DuplicateName(String),
    /// A `put` after [`Archive::seal`]: sealed archives are frozen
    /// (buffered-redundancy schemes cannot soundly grow past their flush).
    Sealed(String),
    /// The scheme rejected the encode (e.g. a block-size change against a
    /// buffered partial stripe).
    Encode(AeError),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::UnknownFile(n) => write!(f, "no archived file named {n:?}"),
            ArchiveError::BlockUnavailable { id, source } => {
                write!(f, "block {id} unavailable and unrepairable ({source})")
            }
            ArchiveError::ChecksumMismatch { name, expected, actual } => write!(
                f,
                "file {name:?} failed verification: manifest crc {expected:#010x}, got {actual:#010x}"
            ),
            ArchiveError::DuplicateName(n) => write!(f, "file {n:?} already archived"),
            ArchiveError::Sealed(n) => {
                write!(f, "archive is sealed; cannot archive {n:?}")
            }
            ArchiveError::Encode(e) => write!(f, "encode failed: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::BlockUnavailable { source, .. } => Some(source),
            ArchiveError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

/// Why [`Archive::open`] could not reconstruct an archive from a backend.
///
/// Every variant names what was lost or mismatched — recovery never
/// panics and never silently serves stale state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// The backend holds no archive metadata at all (no genesis record).
    NoArchive,
    /// A metadata record is damaged, missing mid-journal, or structurally
    /// inconsistent with the records before it. The files logged from
    /// this record onward are unrecoverable from metadata alone.
    CorruptRecord {
        /// Journal sequence number of the damaged record.
        seq: u64,
        /// The exact check that failed.
        detail: String,
    },
    /// The journal was written by a different scheme than the one given —
    /// replaying it would decode garbage.
    SchemeMismatch {
        /// Scheme name in the genesis record.
        archived: String,
        /// Name of the scheme passed to [`Archive::open`].
        given: String,
    },
    /// The encoder frontier could not be restored (snapshot corrupt, or
    /// an in-flight block is gone and unrepairable); the wrapped error
    /// names the missing block.
    Frontier(AeError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoArchive => write!(f, "backend holds no archive metadata"),
            RecoveryError::CorruptRecord { seq, detail } => {
                write!(f, "metadata record meta#{seq} is unusable: {detail}")
            }
            RecoveryError::SchemeMismatch { archived, given } => write!(
                f,
                "archive was written by {archived}, cannot open with {given}"
            ),
            RecoveryError::Frontier(e) => write!(f, "encoder frontier not restorable: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Frontier(e) => Some(e),
            _ => None,
        }
    }
}

/// One metadata copy that had to be skipped during a degraded read of
/// the journal: the record (or pointer cell) was still served from a
/// surviving copy, but this copy was missing or failed its validation.
/// [`Archive::scrub`] re-materializes every damaged copy and clears the
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaDamage {
    /// The damaged copy's id.
    pub id: BlockId,
    /// Journal sequence number (or pointer slot) of the record.
    pub seq: u64,
    /// Whether the damaged block is a checkpoint-pointer cell.
    pub pointer: bool,
    /// Which copy of the record was damaged.
    pub copy: u16,
    /// What failed: `"missing"`, or the first decode check that did not
    /// pass.
    pub detail: String,
}

impl fmt::Display for MetaDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.detail)
    }
}

/// A read-only view that falls back to the scheme's single-block repair
/// when the backend no longer holds a block — so restoring the encoder
/// frontier survives a crash that *also* lost the frontier blocks, as
/// long as they are repairable from surviving redundancy. Nothing is
/// written back; [`Archive::scrub`] heals the backend afterwards.
struct RepairingSource<'a> {
    scheme: &'a dyn RedundancyScheme,
    base: &'a dyn BlockSource,
    written: u64,
}

impl BlockSource for RepairingSource<'_> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.base
            .fetch(id)
            .or_else(|| self.scheme.repair_block(self.base, id, self.written).ok())
    }
}

/// Hides one id from a base source. Used to rebuild a block the backend
/// still *returns* bytes for but reports as corrupted: the scheme must
/// reconstruct it from redundancy, never echo the garbled bytes back.
struct MaskOne<'a> {
    base: &'a dyn BlockSource,
    masked: BlockId,
}

impl BlockSource for MaskOne<'_> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        if id == self.masked {
            None
        } else {
            self.base.fetch(id)
        }
    }
}

/// An append-only archive over any scheme and any backend.
///
/// # Examples
///
/// The legacy AE constructor:
///
/// ```
/// use ae_store::archive::Archive;
/// use ae_store::MemStore;
/// use ae_lattice::Config;
/// use std::sync::Arc;
///
/// let store = Arc::new(MemStore::new());
/// let mut ar = Archive::new(Config::new(2, 1, 2).unwrap(), 64, store);
/// ar.put("notes.txt", b"alpha entanglement").unwrap();
/// assert_eq!(ar.get("notes.txt").unwrap(), b"alpha entanglement");
/// ```
///
/// The same archive over Reed-Solomon — nothing else changes:
///
/// ```
/// use ae_store::archive::Archive;
/// use ae_store::MemStore;
/// use ae_baselines::ReedSolomon;
/// use std::sync::Arc;
///
/// let scheme = Arc::new(ReedSolomon::new(4, 2).unwrap());
/// let mut ar = Archive::with_scheme(scheme, 64, Arc::new(MemStore::new()));
/// ar.put("notes.txt", b"maximum distance separable").unwrap();
/// ar.seal().unwrap(); // flush the partial stripe
/// assert_eq!(ar.get("notes.txt").unwrap(), b"maximum distance separable");
/// ```
pub struct Archive<B: BlockRepo + ?Sized = dyn BlockRepo> {
    scheme: Arc<dyn RedundancyScheme>,
    store: Arc<B>,
    block_size: usize,
    manifest: BTreeMap<String, Entry>,
    /// Write-order log of data-block ids (the manifest extents index into
    /// it); schemes with namespaced ids stay opaque to the archive.
    data_ids: Vec<BlockId>,
    /// Every id written through this archive (data + redundancy + sealed),
    /// in write order — the scrub/repair target universe. Exactly what the
    /// backend should hold, honouring buffered redundancy.
    stored_ids: Vec<BlockId>,
    sealed: bool,
    /// Sequence number of the next metadata journal record.
    next_meta: u64,
    /// Metadata durability policy; `copies` is pinned by the genesis
    /// record, checkpoint cadence is this open's live policy.
    meta: MetaConfig,
    /// The **live** journal records (genesis, committed checkpoint parts
    /// and the suffix) by sequence number — [`Archive::scrub`]
    /// re-materializes any copy the backend lost, so a live archive's
    /// journal is self-healing. GC'd prefix records leave the map.
    journal: BTreeMap<u64, Block>,
    /// Live checkpoint-pointer cells by slot.
    pointers: BTreeMap<u64, Block>,
    /// Part-0 seq and part count of the committed checkpoint, if any.
    checkpoint: Option<(u64, u32)>,
    /// Ping-pong slot the next checkpoint's pointer will overwrite.
    next_pointer_slot: u64,
    /// Put/seal records since the committed checkpoint — the
    /// auto-checkpoint trigger counter.
    records_since_checkpoint: u64,
    /// Set by [`Archive::open`] when a torn final journal record was
    /// detected and truncated.
    torn_tail: Option<u64>,
    /// Metadata copies skipped during [`Archive::open`]'s degraded reads.
    meta_damage: Vec<MetaDamage>,
    /// Journal records actually replayed by [`Archive::open`] (suffix
    /// past the checkpoint; the whole journal when none was usable).
    replayed: u64,
}

/// Outcome of reading one record's copy set.
enum CopyRead {
    /// A copy validated; the decoded record and its canonical bytes.
    Valid(MetaRecord, Block),
    /// At least one copy exists but none validates — torn or corrupt.
    Invalid(RecordError),
    /// No copy exists at all.
    Absent,
}

impl<B: BlockRepo + ?Sized> Archive<B> {
    /// Creates an empty **alpha-entanglement** archive writing
    /// `block_size`-byte blocks into `store` — the thin AE convenience
    /// constructor, kept signature-compatible with the pre-generic
    /// archive.
    pub fn new(cfg: Config, block_size: usize, store: Arc<B>) -> Self {
        Self::with_scheme(Arc::new(Code::new(cfg, block_size)), block_size, store)
    }

    /// Creates an empty archive over any scheme: files are chunked into
    /// `block_size`-byte blocks and encoded through `scheme` into `store`,
    /// and a genesis record is written to the backend's metadata journal
    /// so the archive can be reopened with [`Archive::open`] after a
    /// crash.
    ///
    /// The scheme must be fresh (nothing written through it yet): the
    /// archive owns the write-order log that maps manifest extents to
    /// block ids.
    ///
    /// # Panics
    ///
    /// Panics if the scheme has already encoded data, or if the backend
    /// already holds archive metadata (reopen those with
    /// [`Archive::open`] instead of silently shadowing them).
    pub fn with_scheme(
        scheme: Arc<dyn RedundancyScheme>,
        block_size: usize,
        store: Arc<B>,
    ) -> Self {
        Self::with_scheme_meta(scheme, block_size, store, MetaConfig::default())
    }

    /// [`Archive::with_scheme`] with an explicit metadata durability
    /// policy: copy-set width (pinned for the archive's life), checkpoint
    /// cadence and checkpoint segment size.
    ///
    /// # Panics
    ///
    /// As [`Archive::with_scheme`].
    pub fn with_scheme_meta(
        scheme: Arc<dyn RedundancyScheme>,
        block_size: usize,
        store: Arc<B>,
        meta: MetaConfig,
    ) -> Self {
        assert_eq!(scheme.data_written(), 0, "archive schemes must start fresh");
        assert!(block_size > 0, "blocks must be non-empty");
        assert!(
            (0..MetaId::MAX_COPIES).all(|c| store.fetch(meta_copy_id(0, c)).is_none()),
            "backend already holds an archive; reopen it with Archive::open"
        );
        let meta = MetaConfig {
            copies: meta.clamped_copies(),
            ..meta
        };
        let mut ar = Archive {
            scheme,
            store,
            block_size,
            manifest: BTreeMap::new(),
            data_ids: Vec::new(),
            stored_ids: Vec::new(),
            sealed: false,
            next_meta: 0,
            meta,
            journal: BTreeMap::new(),
            pointers: BTreeMap::new(),
            checkpoint: None,
            next_pointer_slot: 0,
            records_since_checkpoint: 0,
            torn_tail: None,
            meta_damage: Vec::new(),
            replayed: 0,
        };
        ar.append_meta(MetaRecord::Genesis {
            scheme: ar.scheme.scheme_name(),
            block_size: block_size as u64,
            copies: ar.meta.copies,
        });
        ar
    }

    /// Reopens an archive previously created over `store`, replaying the
    /// on-backend metadata journal: the manifest, the write-order id log
    /// and the sealed state are reconstructed record by record (each
    /// record CRC-verified), the scheme's encoder frontier is restored
    /// through [`RedundancyScheme::restore_frontier`] — refetching
    /// in-flight blocks from the backend and falling back to single-block
    /// repair if the crash also lost hardware — and the archive resumes
    /// `put`/`get`/`seal`/`scrub` exactly where the crashed process
    /// stopped.
    ///
    /// `scheme` must be a **fresh** instance of the same scheme the
    /// archive was created with (same parameters; the genesis record's
    /// scheme name is checked). A torn final journal record — a write the
    /// crash cut short — is detected, truncated and reported via
    /// [`Archive::torn_tail`]; the mutation it described was never
    /// acknowledged and its orphan blocks are overwritten as the archive
    /// resumes.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] naming exactly what was lost: no metadata at
    /// all, a damaged or missing mid-journal record, a scheme mismatch,
    /// or an unrestorable encoder frontier.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` already encoded data.
    pub fn open(scheme: Arc<dyn RedundancyScheme>, store: Arc<B>) -> Result<Self, RecoveryError> {
        Self::open_with_meta(scheme, store, MetaConfig::default())
    }

    /// [`Archive::open`] with an explicit metadata policy. The copy-set
    /// width is **adopted from the genesis record** (it is a property of
    /// the stored journal, not of this open); `meta` contributes the
    /// live checkpoint cadence and segment size.
    ///
    /// # Errors / Panics
    ///
    /// As [`Archive::open`].
    pub fn open_with_meta(
        scheme: Arc<dyn RedundancyScheme>,
        store: Arc<B>,
        meta: MetaConfig,
    ) -> Result<Self, RecoveryError> {
        assert_eq!(
            scheme.data_written(),
            0,
            "Archive::open requires a fresh scheme instance"
        );
        // Genesis: probe the widest possible copy set (the true width is
        // *inside* the record); first copy that validates wins.
        let mut genesis: Option<(MetaRecord, Block)> = None;
        let mut copy_state: Vec<Option<RecordError>> = Vec::new();
        for copy in 0..MetaId::MAX_COPIES {
            match store.fetch(meta_copy_id(0, copy)) {
                None => copy_state.push(Some("missing".to_string())),
                Some(block) => match MetaRecord::decode(0, block.as_slice()) {
                    Ok(record) => {
                        if genesis.is_none() {
                            genesis = Some((record, block));
                        }
                        copy_state.push(None);
                    }
                    Err(detail) => copy_state.push(Some(detail)),
                },
            }
        }
        let Some((record, genesis_block)) = genesis else {
            // No valid genesis copy: corrupt if any bytes exist at all,
            // otherwise there is simply no archive here.
            let detail = copy_state
                .iter()
                .flatten()
                .find(|d| d.as_str() != "missing")
                .cloned();
            return Err(match detail {
                Some(detail) => RecoveryError::CorruptRecord { seq: 0, detail },
                None => RecoveryError::NoArchive,
            });
        };
        let MetaRecord::Genesis {
            scheme: archived,
            block_size,
            copies,
        } = record
        else {
            return Err(RecoveryError::CorruptRecord {
                seq: 0,
                detail: "record 0 is not a genesis record".into(),
            });
        };
        if archived != scheme.scheme_name() {
            return Err(RecoveryError::SchemeMismatch {
                archived,
                given: scheme.scheme_name(),
            });
        }
        let meta = MetaConfig {
            copies: MetaConfig {
                copies,
                ..meta.clone()
            }
            .clamped_copies(),
            ..meta
        };
        let mut ar = Archive {
            scheme,
            store,
            block_size: block_size as usize,
            manifest: BTreeMap::new(),
            data_ids: Vec::new(),
            stored_ids: Vec::new(),
            sealed: false,
            next_meta: 1,
            meta,
            journal: BTreeMap::new(),
            pointers: BTreeMap::new(),
            checkpoint: None,
            next_pointer_slot: 0,
            records_since_checkpoint: 0,
            torn_tail: None,
            meta_damage: Vec::new(),
            replayed: 0,
        };
        for (copy, state) in copy_state.iter().enumerate().take(ar.meta.copies as usize) {
            if let Some(detail) = state {
                ar.meta_damage.push(MetaDamage {
                    id: meta_copy_id(0, copy as u16),
                    seq: 0,
                    pointer: false,
                    copy: copy as u16,
                    detail: detail.clone(),
                });
            }
        }
        ar.journal.insert(0, genesis_block);

        // Checkpoint discovery: read the pointer cells, try candidates
        // newest-first, fall back across them — a torn newer checkpoint
        // must never cost data, only replay length.
        let mut checkpoint_frontier = None;
        let (candidates, poisoned_slot) = ar.read_pointers();
        if candidates.is_empty() {
            // No valid pointer: replay from genesis. A *poisoned* cell
            // (bytes present, zero valid copies) is either a crash torn
            // mid-pointer-write — the checkpoint never committed, nothing
            // was GC'd, full replay is correct — or a committed pointer
            // that rotted, where GC makes replay-from-genesis a silent
            // rewind. The two are told apart below: GC always removes
            // record 1 first, so a rotted pointer leaves a replay that
            // cannot get past genesis.
        } else {
            let mut last_err = String::new();
            let mut loaded = None;
            for &(slot, cseq, parts) in &candidates {
                match ar.load_checkpoint(cseq, parts) {
                    Ok(payload) => {
                        loaded = Some((slot, cseq, parts, payload));
                        break;
                    }
                    Err(detail) => last_err = detail,
                }
            }
            let Some((slot, cseq, parts, payload)) = loaded else {
                let (_, cseq, _) = candidates[0];
                return Err(RecoveryError::CorruptRecord {
                    seq: cseq,
                    detail: format!("checkpoint named by pointer is not loadable: {last_err}"),
                });
            };
            checkpoint_frontier = Some(ar.apply_checkpoint(cseq, payload)?);
            ar.checkpoint = Some((cseq, parts));
            ar.next_pointer_slot = 1 - slot;
            ar.next_meta = cseq + parts as u64;
        }

        let frontier = ar.replay()?;
        if let (Some(slot), None, true) = (poisoned_slot, ar.checkpoint, ar.next_meta == 1) {
            // A poisoned pointer cell and a replay that never got past
            // genesis: a committed checkpoint's pointer rotted after GC —
            // opening would silently rewind the archive to empty.
            return Err(RecoveryError::CorruptRecord {
                seq: slot,
                detail: "checkpoint pointer cell has no valid copy".into(),
            });
        }
        if let Some(slot) = poisoned_slot {
            // The survivable flavour (torn mid-commit): report it so
            // scrub can clean the cell up.
            for copy in 0..ar.meta.copies {
                if ar.store.has(pointer_id(slot, copy)) {
                    ar.meta_damage.push(MetaDamage {
                        id: pointer_id(slot, copy),
                        seq: slot,
                        pointer: true,
                        copy,
                        detail: "no valid copy (uncommitted pointer write)".into(),
                    });
                }
            }
        }
        let frontier = frontier.or(checkpoint_frontier);
        if let Some(snapshot) = frontier {
            let store: &B = &ar.store;
            let base: &dyn BlockSource = &store;
            let repairing = RepairingSource {
                scheme: &*ar.scheme,
                base,
                written: ar.data_ids.len() as u64,
            };
            ar.scheme
                .restore_frontier(&snapshot, &repairing)
                .map_err(RecoveryError::Frontier)?;
        }
        Ok(ar)
    }

    /// Reads record `seq`'s copy set, falling through to the first copy
    /// that validates. Copies skipped on the way to a valid one are
    /// recorded in [`Archive::meta_damage`].
    fn fetch_record(&mut self, seq: u64) -> CopyRead {
        let mut valid: Option<(MetaRecord, Block)> = None;
        let mut states: Vec<(u16, Option<RecordError>)> = Vec::new();
        for copy in 0..self.meta.copies {
            match self.store.fetch(meta_copy_id(seq, copy)) {
                None => states.push((copy, Some("missing".to_string()))),
                Some(block) => match MetaRecord::decode(seq, block.as_slice()) {
                    Ok(record) => {
                        if valid.is_none() {
                            valid = Some((record, block));
                        }
                        states.push((copy, None));
                    }
                    Err(detail) => states.push((copy, Some(detail))),
                },
            }
        }
        match valid {
            Some((record, block)) => {
                for (copy, state) in states {
                    if let Some(detail) = state {
                        self.meta_damage.push(MetaDamage {
                            id: meta_copy_id(seq, copy),
                            seq,
                            pointer: false,
                            copy,
                            detail,
                        });
                    }
                }
                CopyRead::Valid(record, block)
            }
            None => {
                let detail = states
                    .iter()
                    .filter_map(|(_, s)| s.clone())
                    .find(|d| d != "missing");
                match detail {
                    Some(detail) => CopyRead::Invalid(detail),
                    None => CopyRead::Absent,
                }
            }
        }
    }

    /// Reads both checkpoint-pointer cells. Returns the distinct valid
    /// `(slot, checkpoint seq, parts)` candidates sorted newest-first,
    /// and the slot of a cell that holds bytes but no valid copy (all
    /// copies of a written pointer destroyed), if any.
    fn read_pointers(&mut self) -> (Vec<(u64, u64, u32)>, Option<u64>) {
        let mut candidates: Vec<(u64, u64, u32)> = Vec::new();
        let mut poisoned = None;
        for slot in 0..2u64 {
            let mut best: Option<(u64, u32)> = None;
            let mut states: Vec<(u16, Option<RecordError>)> = Vec::new();
            let mut any_bytes = false;
            for copy in 0..self.meta.copies {
                match self.store.fetch(pointer_id(slot, copy)) {
                    None => states.push((copy, Some("missing".to_string()))),
                    Some(block) => {
                        any_bytes = true;
                        match MetaRecord::decode(slot, block.as_slice()) {
                            Ok(MetaRecord::Pointer { checkpoint, parts }) => {
                                if best.is_none() {
                                    best = Some((checkpoint, parts));
                                    self.pointers.entry(slot).or_insert(block);
                                }
                                states.push((copy, None));
                            }
                            Ok(_) => states.push((copy, Some("not a pointer record".into()))),
                            Err(detail) => states.push((copy, Some(detail))),
                        }
                    }
                }
            }
            match best {
                Some((checkpoint, parts)) => {
                    for (copy, state) in states {
                        if let Some(detail) = state {
                            self.meta_damage.push(MetaDamage {
                                id: pointer_id(slot, copy),
                                seq: slot,
                                pointer: true,
                                copy,
                                detail,
                            });
                        }
                    }
                    candidates.push((slot, checkpoint, parts));
                }
                None if any_bytes => poisoned = poisoned.or(Some(slot)),
                None => {}
            }
        }
        // Newest checkpoint first; mixed-generation copy sets are
        // handled by falling through candidates.
        candidates.sort_by_key(|&(_, cseq, _)| std::cmp::Reverse(cseq));
        candidates.dedup_by_key(|&mut (_, cseq, parts)| (cseq, parts));
        (candidates, poisoned)
    }

    /// Fetches and reassembles the checkpoint whose part 0 sits at
    /// journal seq `cseq`, validating every part's framing. On success
    /// the parts' canonical blocks join the live journal.
    fn load_checkpoint(&mut self, cseq: u64, parts: u32) -> Result<CheckpointPayload, RecordError> {
        if parts == 0 || cseq == 0 {
            return Err(format!(
                "pointer names impossible checkpoint {cseq}+{parts}"
            ));
        }
        let mut bytes = Vec::new();
        let mut blocks = Vec::new();
        for i in 0..parts {
            let seq = cseq + i as u64;
            match self.fetch_record(seq) {
                CopyRead::Valid(
                    MetaRecord::Checkpoint {
                        part,
                        parts: p,
                        chunk,
                    },
                    block,
                ) if part == i && p == parts => {
                    bytes.extend_from_slice(&chunk);
                    blocks.push((seq, block));
                }
                CopyRead::Valid(..) => {
                    return Err(format!("meta#{seq} is not checkpoint part {i}"));
                }
                CopyRead::Invalid(detail) => return Err(format!("meta#{seq}: {detail}")),
                CopyRead::Absent => return Err(format!("meta#{seq}: missing")),
            }
        }
        let payload = CheckpointPayload::decode(&bytes)?;
        self.journal.extend(blocks);
        Ok(payload)
    }

    /// Installs a checkpoint's state (manifest, id logs, sealed flag),
    /// returning its frontier snapshot. Structural damage is a typed
    /// error naming the checkpoint.
    fn apply_checkpoint(
        &mut self,
        cseq: u64,
        payload: CheckpointPayload,
    ) -> Result<Vec<u8>, RecoveryError> {
        let corrupt = |detail: String| RecoveryError::CorruptRecord { seq: cseq, detail };
        self.data_ids = payload
            .stored_ids
            .iter()
            .copied()
            .filter(|id| id.is_data())
            .collect();
        for (name, byte_len, crc, first_block, block_count) in payload.manifest {
            if first_block + block_count > self.data_ids.len() as u64 {
                return Err(corrupt(format!(
                    "checkpoint entry {name:?} extent exceeds its id log"
                )));
            }
            let entry = Entry {
                first_block,
                block_count,
                byte_len: byte_len as usize,
                crc,
            };
            match self.manifest.entry(name) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    return Err(corrupt(format!("duplicate checkpoint entry {:?}", e.key())));
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(entry);
                }
            }
        }
        self.stored_ids = payload.stored_ids;
        self.sealed = payload.sealed;
        Ok(payload.frontier)
    }

    /// How far past an invalid or missing record the replay looks for
    /// survivors before concluding the journal ended there. A gap longer
    /// than this with valid records beyond it is indistinguishable from
    /// end-of-journal (see the torn-write rules in [`crate::meta`]).
    const REPLAY_PROBE_WINDOW: u64 = 16;

    /// Whether any journal record (any copy) exists within the probe
    /// window after `seq` — i.e. `seq` failing is mid-journal damage,
    /// not the tail.
    fn journal_continues(&self, seq: u64) -> bool {
        (seq + 1..=seq + Self::REPLAY_PROBE_WINDOW)
            .any(|s| (0..self.meta.copies).any(|c| self.store.has(meta_copy_id(s, c))))
    }

    /// Replays journal records from `next_meta` on — the suffix past the
    /// checkpoint when one was loaded — returning the last frontier
    /// snapshot seen (`None` when no record carried one).
    fn replay(&mut self) -> Result<Option<Vec<u8>>, RecoveryError> {
        let mut frontier = None;
        loop {
            let seq = self.next_meta;
            let record = match self.fetch_record(seq) {
                CopyRead::Valid(record, block) => {
                    self.journal.insert(seq, block);
                    record
                }
                CopyRead::Absent => {
                    // End of journal — unless a later record exists
                    // within the probe window, in which case every copy
                    // of this one was destroyed mid-journal (damaged
                    // metadata beyond the redundancy, not a torn tail)
                    // and replaying past it would serve a silently
                    // rewound archive.
                    if self.journal_continues(seq) {
                        return Err(RecoveryError::CorruptRecord {
                            seq,
                            detail: "all copies missing mid-journal".into(),
                        });
                    }
                    break;
                }
                CopyRead::Invalid(detail) => {
                    if self.journal_continues(seq) {
                        return Err(RecoveryError::CorruptRecord { seq, detail });
                    }
                    // A torn final record: the crash cut the write short.
                    // Truncate the journal here — the mutation was never
                    // acknowledged — erase the unacknowledged bytes so the
                    // next open starts clean, and report it.
                    self.erase_record(seq);
                    self.torn_tail = Some(seq);
                    break;
                }
            };
            self.replayed += 1;
            match record {
                MetaRecord::Genesis { .. } => {
                    return Err(RecoveryError::CorruptRecord {
                        seq,
                        detail: "unexpected genesis record mid-journal".into(),
                    });
                }
                MetaRecord::Pointer { .. } => {
                    return Err(RecoveryError::CorruptRecord {
                        seq,
                        detail: "pointer record inside the journal".into(),
                    });
                }
                MetaRecord::Checkpoint { part, parts, .. } => {
                    // A checkpoint whose pointer never became readable:
                    // validate the whole group, then skip it — the
                    // records it folded were replayed on the way here.
                    if part != 0 {
                        return Err(RecoveryError::CorruptRecord {
                            seq,
                            detail: format!("checkpoint part {part} without part 0"),
                        });
                    }
                    match self.skip_checkpoint_group(seq, parts) {
                        Ok(()) => continue,
                        Err(None) => break, // torn checkpoint tail
                        Err(Some(err)) => return Err(err),
                    }
                }
                MetaRecord::Put {
                    name,
                    byte_len,
                    crc,
                    first_block,
                    block_count,
                    ids,
                    frontier: snap,
                } => {
                    if first_block != self.data_ids.len() as u64 {
                        return Err(RecoveryError::CorruptRecord {
                            seq,
                            detail: format!(
                                "extent starts at {first_block} but {} data blocks were replayed",
                                self.data_ids.len()
                            ),
                        });
                    }
                    let data_added = ids.iter().filter(|id| id.is_data()).count() as u64;
                    if data_added != block_count {
                        return Err(RecoveryError::CorruptRecord {
                            seq,
                            detail: format!(
                                "entry claims {block_count} data blocks, record stores {data_added}"
                            ),
                        });
                    }
                    let entry = Entry {
                        first_block,
                        block_count,
                        byte_len: byte_len as usize,
                        crc,
                    };
                    if self.manifest.insert(name.clone(), entry).is_some() {
                        return Err(RecoveryError::CorruptRecord {
                            seq,
                            detail: format!("duplicate manifest entry {name:?}"),
                        });
                    }
                    self.data_ids
                        .extend(ids.iter().copied().filter(|id| id.is_data()));
                    self.stored_ids.extend(ids);
                    frontier = Some(snap);
                    self.records_since_checkpoint += 1;
                }
                MetaRecord::Seal {
                    ids,
                    frontier: snap,
                } => {
                    if self.sealed {
                        return Err(RecoveryError::CorruptRecord {
                            seq,
                            detail: "second seal record".into(),
                        });
                    }
                    self.stored_ids.extend(ids);
                    self.sealed = true;
                    frontier = Some(snap);
                    self.records_since_checkpoint += 1;
                }
            }
            self.next_meta += 1;
        }
        Ok(frontier)
    }

    /// Validates checkpoint parts `cseq..cseq + parts` encountered
    /// in-line during replay (part 0 already read) and advances past
    /// them. `Err(None)` means the group is a torn checkpoint tail —
    /// the whole partial checkpoint is truncated; `Err(Some(_))` means
    /// mid-journal damage.
    fn skip_checkpoint_group(
        &mut self,
        cseq: u64,
        parts: u32,
    ) -> Result<(), Option<RecoveryError>> {
        for i in 1..parts {
            let seq = cseq + i as u64;
            let bad = match self.fetch_record(seq) {
                CopyRead::Valid(MetaRecord::Checkpoint { part, parts: p, .. }, block)
                    if part == i && p == parts =>
                {
                    self.journal.insert(seq, block);
                    continue;
                }
                CopyRead::Valid(..) => Some(format!("meta#{seq} is not checkpoint part {i}")),
                CopyRead::Invalid(detail) => Some(detail),
                CopyRead::Absent => None,
            };
            let continues = self.journal_continues(cseq + parts as u64 - 1);
            if continues || bad.is_some() && self.journal_continues(seq) {
                return Err(Some(RecoveryError::CorruptRecord {
                    seq,
                    detail: bad.unwrap_or_else(|| "checkpoint part missing".into()),
                }));
            }
            // Torn checkpoint tail: drop the partial group entirely —
            // the checkpoint was never committed (its pointer would have
            // been written after the last part). The surviving parts are
            // unacknowledged garbage: erase them so resumed appends can
            // never interleave with stale part records, and retract any
            // degraded-copy reports for records that no longer exist.
            for s in cseq..cseq + parts as u64 {
                self.journal.remove(&s);
                self.erase_record(s);
            }
            self.meta_damage
                .retain(|d| d.pointer || d.seq < cseq || d.seq >= cseq + parts as u64);
            self.next_meta = cseq;
            self.torn_tail = Some(cseq);
            return Err(None);
        }
        self.next_meta = cseq + parts as u64;
        Ok(())
    }

    /// Removes every copy of journal record `seq` from the backend —
    /// used by replay to physically truncate torn, unacknowledged tail
    /// records (plain WAL truncation, applied to the copy set).
    fn erase_record(&self, seq: u64) {
        for copy in 0..self.meta.copies {
            self.store.remove(meta_copy_id(seq, copy));
        }
    }

    /// Appends a record to the on-backend metadata journal — every copy
    /// of its set — keeping the encoded block so [`Archive::scrub`] can
    /// re-materialize copies the backend loses.
    fn append_meta(&mut self, record: MetaRecord) {
        let seq = self.next_meta;
        let block = Block::from_vec(record.encode(seq));
        for copy in 0..self.meta.copies {
            self.store.store(meta_copy_id(seq, copy), block.clone());
        }
        if matches!(record, MetaRecord::Put { .. } | MetaRecord::Seal { .. }) {
            self.records_since_checkpoint += 1;
        }
        self.journal.insert(seq, block);
        self.next_meta += 1;
    }

    /// Folds the archive's entire state into a checkpoint, commits it,
    /// and garbage-collects the superseded journal prefix: parts are
    /// appended (n-way), the pointer cell flips to name them, and only
    /// then are older records removed — a crash at any point leaves
    /// either the previous checkpoint reachable or this one committed.
    /// Returns the journal seq of the checkpoint's part 0.
    ///
    /// Called automatically past [`MetaConfig::checkpoint_every`] and on
    /// [`Archive::seal`]; public so callers with their own policy can
    /// checkpoint explicitly.
    pub fn checkpoint(&mut self) -> u64 {
        let payload = CheckpointPayload {
            manifest: self
                .manifest
                .iter()
                .map(|(name, e)| {
                    (
                        name.clone(),
                        e.byte_len as u64,
                        e.crc,
                        e.first_block,
                        e.block_count,
                    )
                })
                .collect(),
            stored_ids: self.stored_ids.clone(),
            sealed: self.sealed,
            frontier: self.scheme.frontier_snapshot(),
        }
        .encode();
        let cseq = self.next_meta;
        let seg = self.meta.segment_bytes.max(1);
        let parts = payload.chunks(seg).count() as u32;
        for (i, chunk) in payload.chunks(seg).enumerate() {
            self.append_meta(MetaRecord::Checkpoint {
                part: i as u32,
                parts,
                chunk: chunk.to_vec(),
            });
        }
        // The pointer commit: all parts are durable, flip the ping-pong
        // cell to them.
        let slot = self.next_pointer_slot;
        let pointer = Block::from_vec(
            MetaRecord::Pointer {
                checkpoint: cseq,
                parts,
            }
            .encode(slot),
        );
        for copy in 0..self.meta.copies {
            self.store.store(pointer_id(slot, copy), pointer.clone());
        }
        self.pointers.insert(slot, pointer);
        self.next_pointer_slot = 1 - slot;
        // Only now is the prefix garbage: every record between genesis
        // and part 0, previous checkpoints included.
        let dead: Vec<u64> = self.journal.range(1..cseq).map(|(&s, _)| s).collect();
        for s in dead {
            for copy in 0..self.meta.copies {
                self.store.remove(meta_copy_id(s, copy));
            }
            self.journal.remove(&s);
        }
        self.checkpoint = Some((cseq, parts));
        self.records_since_checkpoint = 0;
        cseq
    }

    /// Checkpoints when the configured record threshold has accumulated.
    fn maybe_checkpoint(&mut self) {
        if let Some(every) = self.meta.checkpoint_every {
            if self.records_since_checkpoint >= every.max(1) {
                self.checkpoint();
            }
        }
    }

    /// The underlying backend.
    pub fn store(&self) -> &Arc<B> {
        &self.store
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Arc<dyn RedundancyScheme> {
        &self.scheme
    }

    /// Chunk size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Data blocks written so far (all files).
    pub fn blocks_written(&self) -> u64 {
        self.data_ids.len() as u64
    }

    /// Whether [`Archive::seal`] has been called.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Total records ever appended to the metadata journal (genesis
    /// included): the next record gets seq `meta_len()`. GC'd prefix
    /// records still count — see [`Archive::live_meta_records`] for the
    /// records the backend actually holds.
    pub fn meta_len(&self) -> u64 {
        self.next_meta
    }

    /// Records currently live in the journal: genesis + committed
    /// checkpoint parts + suffix. Checkpointing keeps this bounded while
    /// [`Archive::meta_len`] grows with history.
    pub fn live_meta_records(&self) -> u64 {
        self.journal.len() as u64
    }

    /// Every metadata block id the backend should currently hold: all
    /// copies of every live journal record and pointer cell. Disaster
    /// drills pick metadata victims from this list; [`Archive::scrub`]
    /// heals against it.
    pub fn live_meta_ids(&self) -> Vec<BlockId> {
        let mut ids = Vec::new();
        for &seq in self.journal.keys() {
            for copy in 0..self.meta.copies {
                ids.push(meta_copy_id(seq, copy));
            }
        }
        for &slot in self.pointers.keys() {
            for copy in 0..self.meta.copies {
                ids.push(pointer_id(slot, copy));
            }
        }
        ids
    }

    /// The metadata durability policy in effect: the genesis-pinned
    /// copy-set width plus this open's checkpoint cadence.
    pub fn meta_config(&self) -> &MetaConfig {
        &self.meta
    }

    /// Part-0 journal seq of the committed checkpoint, if any.
    pub fn checkpoint_seq(&self) -> Option<u64> {
        self.checkpoint.map(|(seq, _)| seq)
    }

    /// Journal records [`Archive::open`] actually replayed — the suffix
    /// past the checkpoint, or the full journal without one. The
    /// O(checkpoint)-open guarantee is this number staying bounded by
    /// the checkpoint cadence while [`Archive::meta_len`] grows.
    pub fn replayed_records(&self) -> u64 {
        self.replayed
    }

    /// Metadata copies [`Archive::open`] had to skip on the way to a
    /// valid copy — the degraded-read report of the self-protecting
    /// metadata plane. Empty for clean opens; [`Archive::scrub`] heals
    /// the damage (subsequent opens report clean again).
    pub fn meta_damage(&self) -> &[MetaDamage] {
        &self.meta_damage
    }

    /// The journal sequence number of a torn final record that
    /// [`Archive::open`] detected and truncated — the mutation the crash
    /// cut short (for a torn multi-part checkpoint: its part 0). `None`
    /// for archives that opened clean (or were never reopened).
    pub fn torn_tail(&self) -> Option<u64> {
        self.torn_tail
    }

    /// Names currently archived, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.manifest.keys().map(String::as_str)
    }

    /// Manifest entry for a file.
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.manifest.get(name)
    }

    /// Number of archived files.
    pub fn file_count(&self) -> usize {
        self.manifest.len()
    }

    /// The full manifest in name order: `(name, entry)` pairs. Parity
    /// harnesses compare two archives manifest-first through this.
    pub fn manifest(&self) -> impl Iterator<Item = (&str, &Entry)> {
        self.manifest.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Every id written through this archive (data + redundancy + sealed),
    /// in write order — exactly what the backend should hold right now.
    /// Disaster drills pick victims from this list; [`Archive::scrub`]
    /// repairs against it.
    pub fn stored_ids(&self) -> &[BlockId] {
        &self.stored_ids
    }

    /// The write-order log of data-block ids; manifest extents
    /// ([`Entry::first_block`]) index into it.
    pub fn data_ids(&self) -> &[BlockId] {
        &self.data_ids
    }

    /// Id of the data block at write-order index `k`.
    fn data_id(&self, k: u64) -> BlockId {
        self.data_ids[k as usize]
    }

    /// Archives a file: chunks, encodes the whole file as one batch
    /// through the scheme, stores data + redundancy.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names and on sealed archives; archives are
    /// append-only (§III: "the only assumption is that data are stored
    /// permanently").
    pub fn put(&mut self, name: &str, contents: &[u8]) -> Result<Entry, ArchiveError> {
        if self.sealed {
            return Err(ArchiveError::Sealed(name.to_string()));
        }
        if self.manifest.contains_key(name) {
            return Err(ArchiveError::DuplicateName(name.to_string()));
        }
        let bs = self.block_size;
        // Even empty files occupy one (zero) block so they have an extent.
        let blocks: Vec<Block> = if contents.is_empty() {
            vec![Block::zero(bs)]
        } else {
            contents
                .chunks(bs)
                .map(|chunk| {
                    let mut bytes = chunk.to_vec();
                    bytes.resize(bs, 0);
                    Block::from_vec(bytes)
                })
                .collect()
        };
        let first_block = self.data_ids.len() as u64;
        let report = self
            .scheme
            .encode_batch(&blocks, &self.store)
            .map_err(ArchiveError::Encode)?;
        let entry = Entry {
            first_block,
            block_count: blocks.len() as u64,
            byte_len: contents.len(),
            crc: crc32(contents),
        };
        // Journal the mutation before acknowledging it: a crash after the
        // record lands replays the put; a crash before leaves only orphan
        // blocks that the resumed encoder overwrites.
        self.append_meta(MetaRecord::Put {
            name: name.to_string(),
            byte_len: entry.byte_len as u64,
            crc: entry.crc,
            first_block,
            block_count: entry.block_count,
            ids: report.ids.clone(),
            frontier: self.scheme.frontier_snapshot(),
        });
        self.data_ids
            .extend(report.ids.iter().copied().filter(|id| id.is_data()));
        self.stored_ids.extend(report.ids);
        self.manifest.insert(name.to_string(), entry.clone());
        // Only after the archive state reflects the put may it be folded
        // into a checkpoint.
        self.maybe_checkpoint();
        Ok(entry)
    }

    /// Flushes any buffered redundancy (a partial Reed-Solomon stripe, a
    /// closed chain's closing parity) and freezes the archive: further
    /// `put`s report [`ArchiveError::Sealed`]. Returns the ids the flush
    /// stored.
    ///
    /// Idempotent — on an already-sealed archive, including one freshly
    /// reopened with [`Archive::open`], this is a no-op: the sealed state
    /// is journaled, so a second call never re-flushes the stripe or
    /// stores a duplicate closing parity.
    ///
    /// # Errors
    ///
    /// Propagates scheme flush failures.
    pub fn seal(&mut self) -> Result<Vec<BlockId>, ArchiveError> {
        if self.sealed {
            return Ok(Vec::new());
        }
        let flushed = self
            .scheme
            .seal(&self.store)
            .map_err(ArchiveError::Encode)?;
        self.append_meta(MetaRecord::Seal {
            ids: flushed.clone(),
            frontier: self.scheme.frontier_snapshot(),
        });
        self.stored_ids.extend(flushed.iter().copied());
        self.sealed = true;
        // A sealed archive never grows again: checkpoint it so every
        // future open is O(checkpoint) regardless of its history.
        if self.meta.checkpoint_every.is_some() {
            self.checkpoint();
        }
        Ok(flushed)
    }

    /// Reads a file back, repairing missing blocks on the fly (a degraded
    /// read; repaired blocks are **not** written back — use
    /// [`Self::scrub`]), and verifying the manifest checksum.
    ///
    /// When the backend advertises a native async interior
    /// ([`BlockSource::as_async`] — e.g. `ae_aio::BlockOn` around a
    /// latency-wrapped store), the read runs **pipelined**: the file's
    /// blocks and any repair traffic move through a bounded in-flight
    /// window (`ae_aio::in_flight_window`) instead of paying one round
    /// trip per block, with results and error typing byte-identical to
    /// the serial path.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, ArchiveError> {
        let store: &B = &self.store;
        match store.as_async() {
            Some(handle) => self.get_pipelined(handle, name),
            None => self.get_serial(name),
        }
    }

    fn get_serial(&self, name: &str) -> Result<Vec<u8>, ArchiveError> {
        let entry = self.manifest_entry(name)?;
        let mut out = Vec::with_capacity(entry.byte_len);
        for k in entry.first_block..entry.first_block + entry.block_count {
            let block = self.fetch_or_repair(self.data_id(k))?;
            out.extend_from_slice(block.as_slice());
        }
        Self::finish_read(name, entry, out)
    }

    /// The pipelined degraded read: prefetch the file's data blocks
    /// through the window, then replay the serial read logic against the
    /// recorded answers, resolving any repair traffic it demands through
    /// the window too (see `ae_aio::Replay` for the byte-equivalence
    /// argument).
    fn get_pipelined(&self, handle: AsyncHandle<'_>, name: &str) -> Result<Vec<u8>, ArchiveError> {
        let entry = self.manifest_entry(name)?;
        let ids: Vec<BlockId> = (entry.first_block..entry.first_block + entry.block_count)
            .map(|k| self.data_id(k))
            .collect();
        let window = in_flight_window();
        let repo = handle.repo;
        let mut replay = Replay::new(handle, window);
        let reads = handle.run(Box::pin(windowed_map(ids.clone(), window, move |id| {
            repo.read_async(id)
        })));
        for (&id, read) in ids.iter().zip(reads) {
            replay.seed_read(id, read);
        }
        let (result, writes) = replay.run(|src| {
            let mut out = Vec::with_capacity(entry.byte_len);
            for &id in &ids {
                let block = self.repair_from(src.read(id), src, id)?;
                out.extend_from_slice(block.as_slice());
            }
            Ok(out)
        });
        debug_assert!(
            writes.is_empty(),
            "degraded reads never write to the backend"
        );
        Self::finish_read(name, entry, result?)
    }

    fn manifest_entry(&self, name: &str) -> Result<&Entry, ArchiveError> {
        self.manifest
            .get(name)
            .ok_or_else(|| ArchiveError::UnknownFile(name.to_string()))
    }

    /// Shared tail of both read paths: truncate the padded tail block and
    /// verify the manifest checksum.
    fn finish_read(name: &str, entry: &Entry, mut out: Vec<u8>) -> Result<Vec<u8>, ArchiveError> {
        out.truncate(entry.byte_len);
        let actual = crc32(&out);
        if actual != entry.crc {
            return Err(ArchiveError::ChecksumMismatch {
                name: name.to_string(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(out)
    }

    /// Verifies every archived file end to end; returns the names that
    /// fail (unrepairable blocks or checksum mismatches).
    pub fn verify_all(&self) -> Vec<String> {
        self.manifest
            .keys()
            .filter(|name| self.get(name).is_err())
            .cloned()
            .collect()
    }

    /// Scrubs the archive: round-based repair of every missing block the
    /// backend should hold, written back to the backend — **including the
    /// metadata journal**: every copy of every live record and pointer
    /// cell the backend lost *or corrupted* is re-stored from the
    /// archive's in-memory log, so a live archive heals its own
    /// persistence layer and stays reopenable at full copy-set strength.
    /// Scheme blocks the backend reports as corrupted
    /// ([`StoreError::Corrupted`]) are quarantined (removed) first so the
    /// repair planners rebuild them from surviving redundancy. Returns
    /// how many blocks were restored (data, redundancy and metadata
    /// copies); clears the [`Archive::meta_damage`] report.
    /// When the backend advertises a native async interior
    /// ([`BlockSource::as_async`]), the scrub runs **pipelined**: the
    /// integrity sweep, repair traffic, write-back, metadata compare and
    /// heal all move through the bounded in-flight window, restoring the
    /// byte-identical final backend state the serial scrub would.
    pub fn scrub(&mut self) -> u64 {
        let store = Arc::clone(&self.store);
        let probe: &B = &store;
        let restored = match probe.as_async() {
            Some(handle) => self.scrub_pipelined(handle),
            None => self.scrub_serial(),
        };
        self.meta_damage.clear();
        restored
    }

    fn scrub_serial(&self) -> u64 {
        // Quarantine corrupt scheme blocks: a block whose read fails its
        // integrity check is worse than a missing one (planners would
        // trust its bytes), so drop it and let repair re-materialize it.
        for &id in &self.stored_ids {
            if matches!(self.store.read(id), Err(StoreError::Corrupted(_))) {
                self.store.remove(id);
            }
        }
        let store: &B = &self.store;
        let repo: &dyn BlockRepo = &store;
        let summary =
            self.scheme
                .repair_missing(repo, &self.stored_ids, self.scheme.data_written());
        let mut restored = summary.total_repaired() as u64;
        // Heal the metadata plane copy by copy: byte-compare against the
        // canonical in-memory journal, so silently-garbled copies are
        // rewritten too, not just missing ones.
        let records = self
            .journal
            .iter()
            .map(|(&seq, block)| (false, seq, block.clone()))
            .chain(
                self.pointers
                    .iter()
                    .map(|(&slot, block)| (true, slot, block.clone())),
            )
            .collect::<Vec<_>>();
        for (pointer, seq, block) in records {
            for copy in 0..self.meta.copies {
                let id = if pointer {
                    pointer_id(seq, copy)
                } else {
                    meta_copy_id(seq, copy)
                };
                let healthy = self
                    .store
                    .fetch(id)
                    .is_some_and(|found| found.as_slice() == block.as_slice());
                if !healthy {
                    self.store.store(id, block.clone());
                    restored += 1;
                }
            }
        }
        // Pointer cells the archive does not own (uncommitted writes a
        // crash tore mid-commit, survived by open) are garbage: clear
        // the bytes so future opens see a clean cell.
        for slot in 0..2u64 {
            if !self.pointers.contains_key(&slot) {
                for copy in 0..self.meta.copies {
                    self.store.remove(pointer_id(slot, copy));
                }
            }
        }
        restored
    }

    /// The pipelined scrub: same four stages as [`Self::scrub_serial`],
    /// each moved through the bounded in-flight window — (1) one read
    /// sweep of everything the backend should hold, quarantining corrupt
    /// blocks; (2) round-based repair replayed against the sweep's
    /// answers with its write log committed in deterministic order;
    /// (3) metadata compare-and-heal; (4) stale pointer-cell clearing.
    fn scrub_pipelined(&self, handle: AsyncHandle<'_>) -> u64 {
        let window = in_flight_window();
        let repo = handle.repo;
        // Stage 1: integrity sweep + quarantine.
        let sweep: Vec<BlockId> = self.stored_ids.clone();
        let reads = handle.run(Box::pin(windowed_map(sweep.clone(), window, move |id| {
            repo.read_async(id)
        })));
        let corrupt: Vec<BlockId> = sweep
            .iter()
            .zip(&reads)
            .filter(|(_, r)| matches!(r, Err(StoreError::Corrupted(_))))
            .map(|(&id, _)| id)
            .collect();
        handle.run(Box::pin(windowed_map(corrupt.clone(), window, move |id| {
            repo.remove_async(id)
        })));
        // Stage 2: replayed repair. The sweep's answers describe the
        // post-quarantine backend, so the planners see exactly what the
        // serial path's would.
        let mut replay = Replay::new(handle, window);
        let corrupt_set: std::collections::HashSet<BlockId> = corrupt.into_iter().collect();
        for (&id, read) in sweep.iter().zip(reads) {
            if corrupt_set.contains(&id) {
                replay.seed_absent(id);
            } else {
                replay.seed_read(id, read);
            }
        }
        let written = self.scheme.data_written();
        let (summary, writes) = replay.run(|src| {
            let repo: &dyn BlockRepo = src;
            self.scheme.repair_missing(repo, &self.stored_ids, written)
        });
        replay.commit(writes);
        let mut restored = summary.total_repaired() as u64;
        // Stage 3: metadata compare-and-heal, in the serial path's record
        // order (journal by sequence, then pointers by slot, copies
        // innermost).
        let mut meta: Vec<(BlockId, Block)> = Vec::new();
        for (&seq, block) in &self.journal {
            for copy in 0..self.meta.copies {
                meta.push((meta_copy_id(seq, copy), block.clone()));
            }
        }
        for (&slot, block) in &self.pointers {
            for copy in 0..self.meta.copies {
                meta.push((pointer_id(slot, copy), block.clone()));
            }
        }
        let meta_ids: Vec<BlockId> = meta.iter().map(|(id, _)| *id).collect();
        let found = handle.run(Box::pin(windowed_map(meta_ids, window, move |id| {
            repo.fetch_async(id)
        })));
        let unhealthy: Vec<(BlockId, Block)> = meta
            .into_iter()
            .zip(found)
            .filter(|((_, canon), f)| f.as_ref().is_none_or(|b| b.as_slice() != canon.as_slice()))
            .map(|(rec, _)| rec)
            .collect();
        restored += unhealthy.len() as u64;
        handle.run(Box::pin(windowed_map(
            unhealthy,
            window,
            move |(id, block)| repo.store_async(id, block),
        )));
        // Stage 4: clear pointer cells the archive does not own.
        let mut clears: Vec<BlockId> = Vec::new();
        for slot in 0..2u64 {
            if !self.pointers.contains_key(&slot) {
                for copy in 0..self.meta.copies {
                    clears.push(pointer_id(slot, copy));
                }
            }
        }
        handle.run(Box::pin(windowed_map(clears, window, move |id| {
            repo.remove_async(id)
        })));
        restored
    }

    fn fetch_or_repair(&self, id: BlockId) -> Result<Block, ArchiveError> {
        let store: &B = &self.store;
        let base: &dyn BlockSource = &store;
        self.repair_from(self.store.read(id), base, id)
    }

    /// The degraded-read core, factored over its block source so the
    /// serial path (the backend itself) and the pipelined path (the
    /// replay recorder) run it verbatim: take the already-probed read
    /// result and, on failure, rebuild from redundancy reachable through
    /// `base` with the target id masked.
    fn repair_from(
        &self,
        read: Result<Block, StoreError>,
        base: &dyn BlockSource,
        id: BlockId,
    ) -> Result<Block, ArchiveError> {
        // `read`, not `fetch`: a backend that verifies checksums reports
        // tampered bytes as `Corrupted`, which to a decoder means the
        // same as missing — rebuild from redundancy. Mask the id from
        // the repair source so the garbled bytes cannot leak back in.
        if let Ok(b) = read {
            return Ok(b);
        }
        let masked = MaskOne { base, masked: id };
        let source: &dyn BlockSource = &masked;
        let written = self.scheme.data_written();
        // Fast path: a single repair option from currently available
        // blocks (one XOR for entanglements, one stripe decode for RS).
        let fast_err = match self.scheme.repair_block(source, id, written) {
            Ok(b) => return Ok(b),
            Err(e) => e,
        };
        // Slow path: round-based repair into a read-side overlay, so
        // chained reconstructions work without mutating the backend
        // (degraded reads stay read-only).
        let overlay = Overlay::new(source);
        self.scheme
            .repair_missing(&overlay, &self.stored_ids, written);
        overlay
            .patch
            .remove(&id)
            .ok_or(ArchiveError::BlockUnavailable {
                id,
                source: fast_err,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::meta_id;
    use crate::store::MemStore;
    use ae_blocks::NodeId;

    fn data_id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn archive() -> Archive<MemStore> {
        Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::new(MemStore::new()))
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(seed).wrapping_add(3))
            .collect()
    }

    #[test]
    fn put_get_roundtrip_multiple_files() {
        let mut ar = archive();
        let a = payload(1000, 7);
        let b = payload(64, 11); // exactly one block
        let c = payload(65, 13); // one block + 1 byte
        ar.put("a", &a).unwrap();
        ar.put("b", &b).unwrap();
        ar.put("c", &c).unwrap();
        assert_eq!(ar.get("a").unwrap(), a);
        assert_eq!(ar.get("b").unwrap(), b);
        assert_eq!(ar.get("c").unwrap(), c);
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(ar.entry("b").unwrap().block_count, 1);
        assert_eq!(ar.entry("c").unwrap().block_count, 2);
        assert_eq!(ar.entry("a").unwrap().first_block, 0);
        assert_eq!(ar.entry("b").unwrap().first_block, 16);
    }

    #[test]
    fn empty_file_supported() {
        let mut ar = archive();
        ar.put("empty", b"").unwrap();
        assert_eq!(ar.get("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(ar.entry("empty").unwrap().block_count, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ar = archive();
        ar.put("x", b"1").unwrap();
        assert!(matches!(
            ar.put("x", b"2"),
            Err(ArchiveError::DuplicateName(_))
        ));
    }

    #[test]
    fn sealed_archives_reject_puts() {
        let mut ar = archive();
        ar.put("x", b"1").unwrap();
        assert!(ar.seal().is_ok());
        assert!(ar.is_sealed());
        assert!(matches!(ar.put("y", b"2"), Err(ArchiveError::Sealed(_))));
        assert_eq!(ar.seal().unwrap(), Vec::new(), "idempotent");
        assert_eq!(ar.get("x").unwrap(), b"1");
    }

    #[test]
    fn unknown_file_reported() {
        let ar = archive();
        assert!(matches!(ar.get("nope"), Err(ArchiveError::UnknownFile(_))));
    }

    #[test]
    fn degraded_read_repairs_on_the_fly() {
        let mut ar = archive();
        let data = payload(640, 5);
        let entry = ar.put("f", &data).unwrap();
        // Drop three data blocks behind the archive's back.
        for k in [0, 4, 9] {
            ar.store().remove(data_id(entry.first_block + k + 1));
        }
        assert_eq!(ar.get("f").unwrap(), data, "read-time repair");
        // Blocks remain missing until scrubbed.
        assert!(!ar.store().contains(data_id(1)));
        let restored = ar.scrub();
        assert_eq!(restored, 3);
        assert!(ar.store().contains(data_id(1)));
        assert_eq!(ar.scrub(), 0, "idempotent");
    }

    #[test]
    fn scrub_restores_parities_too() {
        let mut ar = archive();
        ar.put("f", &payload(640, 9)).unwrap();
        let killed = 5;
        for i in 1..=killed {
            ar.store().remove(BlockId::Parity(ae_blocks::EdgeId::new(
                ae_blocks::StrandClass::Horizontal,
                NodeId(i),
            )));
        }
        assert_eq!(ar.scrub(), killed);
        assert!(ar.verify_all().is_empty());
    }

    #[test]
    fn verify_all_flags_dead_files() {
        let mut ar = Archive::new(Config::new(2, 1, 1).unwrap(), 32, Arc::new(MemStore::new()));
        ar.put("ok", &payload(100, 3)).unwrap();
        let entry = ar.put("doomed", &payload(100, 4)).unwrap();
        // Erase a Fig 7 A dead pattern inside "doomed": two adjacent nodes
        // plus both parallel edges between them.
        let i = entry.first_block + 2; // 1-based node of the second block
        ar.store().remove(data_id(i));
        ar.store().remove(data_id(i + 1));
        for class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
        ] {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        assert_eq!(ar.verify_all(), vec!["doomed".to_string()]);
        assert!(ar.get("ok").is_ok());
        // The failure names the block and carries the repair detail.
        match ar.get("doomed") {
            Err(ArchiveError::BlockUnavailable { id, source }) => {
                assert!(id.is_data());
                assert!(!source.missing_blocks().is_empty());
            }
            other => panic!("expected BlockUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn degraded_read_chains_repairs_when_tuples_are_broken() {
        // Erase a data block AND parts of all its tuples, leaving a repair
        // chain: the single-XOR fast path fails, the overlay rounds win.
        let mut ar = archive();
        let data = payload(640, 17);
        let entry = ar.put("f", &data).unwrap();
        let i = entry.first_block + 5; // 1-based node of the fifth block
        ar.store().remove(data_id(i));
        // Break every pp-tuple of d_i by removing one parity per class…
        for &class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
            ae_blocks::StrandClass::LeftHanded,
        ]
        .iter()
        {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        // …the parities themselves are repairable (their dp-tuples are
        // intact), so a two-round read still reconstructs the file.
        assert_eq!(ar.get("f").unwrap(), data);
        // And the backend was not mutated by the read.
        assert!(!ar.store().contains(data_id(i)));
    }

    #[test]
    fn works_over_a_distributed_store_with_outages() {
        use crate::cluster::LocationId;
        use crate::distributed::DistributedStore;
        use crate::placement::Placement;

        let store = Arc::new(DistributedStore::new(30, Placement::Random { seed: 4 }));
        let mut ar = Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::clone(&store));
        let data = payload(3000, 21);
        ar.put("big", &data).unwrap();
        store.with_cluster(|c| {
            for l in [2, 9, 16, 23] {
                c.fail(LocationId(l));
            }
        });
        assert_eq!(ar.get("big").unwrap(), data, "degraded read through outage");
    }

    #[test]
    fn type_erased_backend_works() {
        // Archive<dyn BlockRepo>: backend chosen at runtime.
        let store: Arc<dyn BlockRepo> = Arc::new(MemStore::new());
        let mut ar: Archive = Archive::new(Config::new(2, 1, 2).unwrap(), 32, store);
        let data = payload(200, 29);
        ar.put("f", &data).unwrap();
        ar.store().remove(data_id(2));
        assert_eq!(ar.get("f").unwrap(), data);
    }

    #[test]
    fn error_display() {
        let e = ArchiveError::ChecksumMismatch {
            name: "f".into(),
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("verification"));
        assert!(ArchiveError::UnknownFile("x".into())
            .to_string()
            .contains("x"));
        assert!(ArchiveError::Sealed("y".into())
            .to_string()
            .contains("sealed"));
        assert!(RecoveryError::NoArchive.to_string().contains("metadata"));
        assert!(RecoveryError::SchemeMismatch {
            archived: "AE(3,2,5)".into(),
            given: "RS(4,2)".into()
        }
        .to_string()
        .contains("AE(3,2,5)"));
    }

    fn ae_scheme() -> Arc<dyn RedundancyScheme> {
        Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64))
    }

    #[test]
    fn crash_and_reopen_resumes_mid_stream() {
        let (a, b, c) = (payload(1000, 7), payload(300, 11), payload(129, 13));

        // The uninterrupted reference run.
        let ref_store = Arc::new(MemStore::new());
        let mut reference = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&ref_store));
        reference.put("a", &a).unwrap();
        reference.put("b", &b).unwrap();
        reference.put("c", &c).unwrap();
        reference.seal().unwrap();

        // The crashed run: two puts, then the process dies.
        let store = Arc::new(MemStore::new());
        {
            let mut ar = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store));
            ar.put("a", &a).unwrap();
            ar.put("b", &b).unwrap();
        } // crash: archive and scheme dropped, backend survives

        let mut ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.torn_tail(), None);
        assert_eq!(ar.block_size(), 64);
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(ar.get("a").unwrap(), a, "pre-crash contents replay");
        ar.put("c", &c).unwrap();
        ar.seal().unwrap();
        assert_eq!(ar.get("c").unwrap(), c);

        // Block-for-block identical to the uninterrupted run.
        assert_eq!(ar.stored_ids(), reference.stored_ids());
        assert_eq!(ar.entry("c"), reference.entry("c"));
        for id in reference.stored_ids() {
            assert_eq!(store.get(*id).unwrap(), ref_store.get(*id).unwrap(), "{id}");
        }
    }

    #[test]
    fn reopen_restores_sealed_state_and_seal_stays_idempotent() {
        use ae_baselines::ReedSolomon;
        let store = Arc::new(MemStore::new());
        {
            let scheme: Arc<dyn RedundancyScheme> = Arc::new(ReedSolomon::new(4, 2).unwrap());
            let mut ar = Archive::with_scheme(scheme, 32, Arc::clone(&store));
            ar.put("f", &payload(200, 9)).unwrap(); // 7 blocks: 3 buffered
            assert!(!ar.seal().unwrap().is_empty(), "partial stripe flushed");
        }
        let before = store.len();
        let scheme: Arc<dyn RedundancyScheme> = Arc::new(ReedSolomon::new(4, 2).unwrap());
        let mut ar = Archive::open(scheme, Arc::clone(&store)).unwrap();
        assert!(ar.is_sealed(), "sealed state survives the crash");
        assert_eq!(ar.seal().unwrap(), Vec::new(), "re-seal is a no-op");
        assert_eq!(store.len(), before, "no duplicate stripe flush");
        assert!(matches!(
            ar.put("late", b"no"),
            Err(ArchiveError::Sealed(_))
        ));
        assert_eq!(ar.get("f").unwrap(), payload(200, 9));
    }

    #[test]
    fn open_repairs_lost_frontier_blocks_on_the_fly() {
        let store = Arc::new(MemStore::new());
        {
            let mut ar = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store));
            ar.put("f", &payload(1000, 5)).unwrap();
        }
        // The crash also takes a frontier parity with it; its dp-tuple
        // survives, so open's repairing fallback reconstructs it.
        let frontier = BlockId::Parity(ae_blocks::EdgeId::new(
            ae_blocks::StrandClass::Horizontal,
            NodeId(16),
        ));
        assert!(store.remove(frontier));
        let mut ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(!store.contains(frontier), "open mutates nothing");
        assert_eq!(ar.scrub(), 1, "scrub heals the backend afterwards");
        ar.put("g", &payload(70, 6)).unwrap();
        assert_eq!(ar.get("g").unwrap(), payload(70, 6));
    }

    #[test]
    fn scrub_heals_the_metadata_journal_too() {
        let store = Arc::new(MemStore::new());
        let mut ar = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store));
        ar.put("a", &payload(500, 3)).unwrap();
        ar.put("b", &payload(500, 4)).unwrap();
        // The backend loses a journal record AND a data block.
        assert!(store.remove(meta_id(1)));
        assert!(store.remove(data_id(3)));
        assert_eq!(ar.scrub(), 2, "one data repair + one journal re-store");
        assert!(store.contains(meta_id(1)), "journal is self-healing");
        assert_eq!(ar.scrub(), 0, "idempotent");
        // The healed journal replays: a crash right now is survivable.
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.get("a").unwrap(), payload(500, 3));
        assert_eq!(ar.get("b").unwrap(), payload(500, 4));
    }

    #[test]
    fn open_failure_modes_are_typed() {
        // No metadata at all.
        assert!(matches!(
            Archive::open(ae_scheme(), Arc::new(MemStore::new())),
            Err(RecoveryError::NoArchive)
        ));

        // Wrong scheme.
        let store = Arc::new(MemStore::new());
        drop(Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store)));
        let rs: Arc<dyn RedundancyScheme> = Arc::new(ae_baselines::ReedSolomon::new(4, 2).unwrap());
        assert!(matches!(
            Archive::open(rs, Arc::clone(&store)),
            Err(RecoveryError::SchemeMismatch { archived, given })
                if archived == "AE(3,2,5)" && given == "RS(4,2)"
        ));

        // One scribbled genesis copy is survivable: a surviving copy wins
        // and the damage is reported, not fatal.
        store.put(meta_id(0), Block::from_vec(vec![0xAB; 40]));
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(
            ar.meta_damage().iter().any(|d| d.seq == 0 && !d.pointer),
            "degraded genesis read is reported: {:?}",
            ar.meta_damage()
        );
        drop(ar);

        // Every genesis copy scribbled: typed corruption.
        for copy in 0..MetaId::MAX_COPIES {
            store.put(meta_copy_id(0, copy), Block::from_vec(vec![0xAB; 40]));
        }
        assert!(matches!(
            Archive::open(ae_scheme(), Arc::clone(&store)),
            Err(RecoveryError::CorruptRecord { seq: 0, .. })
        ));
    }

    #[test]
    fn torn_final_record_is_truncated_and_reported() {
        let store = Arc::new(MemStore::new());
        let torn_seq = {
            let mut ar = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store));
            ar.put("kept", &payload(500, 3)).unwrap();
            ar.put("torn", &payload(500, 4)).unwrap();
            ar.meta_len() - 1
        };
        // Tear EVERY copy of the final journal record: keep a prefix of
        // its bytes — the crash happened before any copy was complete.
        let full = store.get(meta_id(torn_seq)).unwrap();
        for copy in 0..MetaConfig::default().copies {
            store.put(
                meta_copy_id(torn_seq, copy),
                Block::copy_from_slice(&full.as_slice()[..10]),
            );
        }

        let mut ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.torn_tail(), Some(torn_seq), "truncation is reported");
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["kept"]);
        assert_eq!(ar.get("kept").unwrap(), payload(500, 3));
        assert!(
            matches!(ar.get("torn"), Err(ArchiveError::UnknownFile(_)),),
            "the un-acknowledged put is gone, not stale"
        );
        // The archive resumes: the journal overwrites the torn record.
        ar.put("after", &payload(100, 5)).unwrap();
        assert_eq!(ar.get("after").unwrap(), payload(100, 5));
        assert!(ar.verify_all().is_empty());
    }

    #[test]
    fn mid_journal_damage_is_fatal_not_silent() {
        let store = Arc::new(MemStore::new());
        {
            let mut ar = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store));
            ar.put("a", &payload(200, 3)).unwrap();
            ar.put("b", &payload(200, 4)).unwrap();
            ar.put("c", &payload(200, 5)).unwrap();
            ar.put("d", &payload(200, 6)).unwrap();
        }
        let copies = MetaConfig::default().copies;
        // Losing ONE copy of the first put record is survivable: the read
        // falls through to a surviving copy and reports the damage.
        store.remove(meta_id(1));
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.names().count(), 4, "copy fall-through keeps the data");
        assert!(ar.meta_damage().iter().any(|d| d.seq == 1 && !d.pointer));
        drop(ar);
        // Damage EVERY copy of the FIRST put record (later records
        // follow): replay must refuse rather than silently rewind past it.
        for copy in 0..copies {
            store.remove(meta_copy_id(1, copy));
        }
        assert!(matches!(
            Archive::open(ae_scheme(), Arc::clone(&store)),
            Err(RecoveryError::CorruptRecord { seq: 1, .. })
        ));
        // A *gap* of consecutive lost records with survivors beyond is
        // still mid-journal damage, not an end-of-journal.
        for seq in [2u64, 3] {
            for copy in 0..copies {
                store.remove(meta_copy_id(seq, copy));
            }
        }
        assert!(matches!(
            Archive::open(ae_scheme(), Arc::clone(&store)),
            Err(RecoveryError::CorruptRecord { seq: 1, .. })
        ));
    }

    #[test]
    fn open_rejects_a_scheme_with_the_wrong_block_size() {
        let store = Arc::new(MemStore::new());
        {
            let mut ar = Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store));
            ar.put("f", &payload(500, 3)).unwrap();
        }
        // Same AE parameters (same scheme name!) but 32-byte blocks: the
        // frontier snapshot pins the block size, so open fails typed
        // instead of serving an archive that breaks on the next put.
        let wrong: Arc<dyn RedundancyScheme> =
            Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 32));
        match Archive::open(wrong, Arc::clone(&store)) {
            Err(RecoveryError::Frontier(AeError::CorruptFrontier { detail })) => {
                assert!(detail.contains("64"), "{detail}");
            }
            Err(other) => panic!("expected CorruptFrontier, got {other}"),
            Ok(_) => panic!("wrong block size must not open"),
        }
    }

    #[test]
    #[should_panic(expected = "Archive::open")]
    fn fresh_constructor_refuses_an_occupied_backend() {
        let store = Arc::new(MemStore::new());
        drop(Archive::with_scheme(ae_scheme(), 64, Arc::clone(&store)));
        // Shadowing an existing archive must panic, pointing at open().
        let _ = Archive::with_scheme(ae_scheme(), 64, store);
    }

    fn meta_cfg(copies: u16, every: Option<u64>) -> MetaConfig {
        MetaConfig {
            copies,
            checkpoint_every: every,
            ..MetaConfig::default()
        }
    }

    #[test]
    fn checkpoint_bounds_the_live_journal_and_gcs_the_prefix() {
        let store = Arc::new(MemStore::new());
        let mut ar =
            Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(3, Some(4)));
        for i in 0..12u8 {
            ar.put(&format!("f{i}"), &payload(150, i)).unwrap();
        }
        let cseq = ar.checkpoint_seq().expect("cadence of 4 must have fired");
        assert!(
            ar.live_meta_records() < ar.meta_len(),
            "GC shrank the live journal ({} live, {} ever)",
            ar.live_meta_records(),
            ar.meta_len()
        );
        // The GC'd prefix is really gone from the backend, every copy.
        for copy in 0..3 {
            assert!(!store.contains(meta_copy_id(1, copy)), "copy {copy}");
        }
        // ... and everything the checkpoint superseded replays correctly.
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.checkpoint_seq(), Some(cseq), "pointer names the commit");
        assert!(ar.meta_damage().is_empty());
        for i in 0..12u8 {
            assert_eq!(ar.get(&format!("f{i}")).unwrap(), payload(150, i));
        }
    }

    #[test]
    fn reopen_replays_the_suffix_not_the_history() {
        let store = Arc::new(MemStore::new());
        let mut ar =
            Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(3, Some(8)));
        for i in 0..40u8 {
            ar.put(&format!("f{i}"), &payload(100, i)).unwrap();
        }
        let history = ar.meta_len();
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(
            ar.replayed_records() <= 8 + 2,
            "open replayed {} records of a {history}-record history",
            ar.replayed_records()
        );
        assert_eq!(ar.names().count(), 40);
    }

    #[test]
    fn seal_checkpoints_and_further_checkpoints_are_stable() {
        let store = Arc::new(MemStore::new());
        let mut ar =
            Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(2, Some(100)));
        ar.put("f", &payload(300, 7)).unwrap();
        assert_eq!(ar.checkpoint_seq(), None, "threshold not reached");
        ar.seal().unwrap();
        let sealed_ckpt = ar.checkpoint_seq().expect("seal checkpoints");
        drop(ar);
        let mut ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(ar.is_sealed());
        assert_eq!(ar.checkpoint_seq(), Some(sealed_ckpt));
        assert_eq!(ar.get("f").unwrap(), payload(300, 7));
        // An explicit re-checkpoint ping-pongs the pointer slot and stays
        // reopenable (the previous checkpoint is GC'd as ordinary prefix).
        let next = ar.checkpoint();
        assert!(next > sealed_ckpt);
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.checkpoint_seq(), Some(next));
        assert_eq!(ar.get("f").unwrap(), payload(300, 7));
    }

    #[test]
    fn multi_part_checkpoints_roundtrip() {
        let store = Arc::new(MemStore::new());
        let cfg = MetaConfig {
            copies: 2,
            checkpoint_every: Some(6),
            segment_bytes: 64, // force several parts per checkpoint
        };
        let mut ar = Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), cfg);
        for i in 0..14u8 {
            ar.put(&format!("part{i}"), &payload(200, i)).unwrap();
        }
        assert!(ar.checkpoint_seq().is_some());
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(ar.meta_damage().is_empty());
        for i in 0..14u8 {
            assert_eq!(ar.get(&format!("part{i}")).unwrap(), payload(200, i));
        }
    }

    #[test]
    fn single_copy_loss_of_any_live_meta_id_is_survivable_and_healable() {
        let store = Arc::new(MemStore::new());
        let mut ar =
            Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(3, Some(3)));
        for i in 0..8u8 {
            ar.put(&format!("f{i}"), &payload(120, i)).unwrap();
        }
        let live = ar.live_meta_ids();
        drop(ar);
        // Lose one copy (the first) of EVERY live record and pointer cell
        // at once: n-way redundancy keeps every record readable.
        for &id in &live {
            if let BlockId::Meta(m) = id {
                if m.copy() == 0 {
                    assert!(store.remove(id), "{id:?} should have been live");
                }
            }
        }
        let mut ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(
            !ar.meta_damage().is_empty(),
            "degraded reads must be reported"
        );
        for i in 0..8u8 {
            assert_eq!(ar.get(&format!("f{i}")).unwrap(), payload(120, i));
        }
        // Scrub heals every lost copy; the next open is clean.
        assert!(ar.scrub() > 0);
        for &id in &live {
            assert!(store.contains(id), "{id:?} healed");
        }
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(ar.meta_damage().is_empty(), "healed archive opens clean");
    }

    #[test]
    fn scrub_rewrites_garbled_meta_copies() {
        let store = Arc::new(MemStore::new());
        let mut ar =
            Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(3, None));
        ar.put("f", &payload(400, 9)).unwrap();
        // Garble (not delete) the middle copy of the put record: scrub
        // byte-compares against the canonical journal and rewrites it.
        let victim = meta_copy_id(1, 1);
        store.put(victim, Block::from_vec(vec![0x5A; 24]));
        assert_eq!(ar.scrub(), 1, "exactly the garbled copy is rewritten");
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(ar.meta_damage().is_empty());
        assert_eq!(ar.get("f").unwrap(), payload(400, 9));
    }

    #[test]
    fn copy_width_is_pinned_by_genesis_not_by_the_reopener() {
        let store = Arc::new(MemStore::new());
        drop(Archive::with_scheme_meta(
            ae_scheme(),
            64,
            Arc::clone(&store),
            meta_cfg(2, None),
        ));
        // The reopener asks for 3 copies; the stored journal has 2 and
        // that is what governs reads and future writes.
        let ar = Archive::open_with_meta(ae_scheme(), Arc::clone(&store), meta_cfg(3, Some(10)))
            .unwrap();
        assert_eq!(ar.meta_config().copies, 2, "width adopted from genesis");
        assert_eq!(
            ar.meta_config().checkpoint_every,
            Some(10),
            "cadence is the reopener's policy"
        );
        assert!(!store.contains(meta_copy_id(0, 2)), "no third copy exists");
    }

    #[test]
    fn an_uncommitted_torn_pointer_write_is_survivable_and_scrubbed() {
        let store = Arc::new(MemStore::new());
        {
            let mut ar =
                Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(3, None));
            ar.put("f", &payload(250, 4)).unwrap();
        }
        // A crash tore the very first pointer-cell write: garbage bytes,
        // zero valid copies, but nothing was ever GC'd — full replay is
        // still the whole truth and open must take it.
        store.put(pointer_id(0, 0), Block::from_vec(vec![0xCC; 9]));
        let mut ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert_eq!(ar.get("f").unwrap(), payload(250, 4));
        assert!(
            ar.meta_damage().iter().any(|d| d.pointer),
            "the poisoned cell is reported: {:?}",
            ar.meta_damage()
        );
        // Scrub clears the uncommitted garbage; the next open is clean.
        ar.scrub();
        assert!(!store.contains(pointer_id(0, 0)), "garbage cell removed");
        drop(ar);
        let ar = Archive::open(ae_scheme(), Arc::clone(&store)).unwrap();
        assert!(ar.meta_damage().is_empty());
    }

    #[test]
    fn losing_every_pointer_copy_with_bytes_present_is_typed() {
        let store = Arc::new(MemStore::new());
        let mut ar =
            Archive::with_scheme_meta(ae_scheme(), 64, Arc::clone(&store), meta_cfg(2, Some(2)));
        for i in 0..5u8 {
            ar.put(&format!("f{i}"), &payload(90, i)).unwrap();
        }
        assert!(ar.checkpoint_seq().is_some());
        drop(ar);
        // Scribble every copy of every pointer cell: the cell exists but
        // no copy validates. Replaying from scratch could silently rewind
        // past the GC'd prefix, so open must refuse, typed.
        for slot in 0..2u64 {
            for copy in 0..2 {
                if store.contains(pointer_id(slot, copy)) {
                    store.put(pointer_id(slot, copy), Block::from_vec(vec![0xEE; 16]));
                }
            }
        }
        assert!(matches!(
            Archive::open(ae_scheme(), Arc::clone(&store)),
            Err(RecoveryError::CorruptRecord { .. })
        ));
    }
}
