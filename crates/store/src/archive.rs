//! A file-level archival API over an entangled block store.
//!
//! The paper positions AE codes as codes "to archive data in unreliable
//! environments"; this module is the layer a user actually touches: an
//! append-only [`Archive`] that chunks files into lattice blocks, keeps a
//! manifest (name → lattice extent + length + CRC32), and serves reads and
//! repairs. Data and parities live in any [`BlockStore`], so the archive
//! runs equally over a local [`crate::MemStore`] or a
//! [`crate::DistributedStore`] with failing locations.

use crate::store::{BlockStore, StoreError};
use ae_core::{decoder, Code, Entangler};
use ae_blocks::{crc32, Block, BlockId, NodeId};
use ae_lattice::Config;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Manifest entry for one archived file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// First lattice position of the file's blocks.
    pub first_node: u64,
    /// Number of data blocks.
    pub block_count: u64,
    /// Original length in bytes (the tail block is zero-padded).
    pub byte_len: usize,
    /// CRC32 of the original contents, checked on every read.
    pub crc: u32,
}

/// Errors from archive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// No entry under that name.
    UnknownFile(String),
    /// A block could not be fetched or repaired.
    BlockUnavailable(BlockId),
    /// The reassembled file failed its manifest checksum.
    ChecksumMismatch {
        /// File name.
        name: String,
        /// Expected CRC32 from the manifest.
        expected: u32,
        /// CRC32 of the bytes actually reassembled.
        actual: u32,
    },
    /// A name was archived twice.
    DuplicateName(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::UnknownFile(n) => write!(f, "no archived file named {n:?}"),
            ArchiveError::BlockUnavailable(id) => {
                write!(f, "block {id} unavailable and unrepairable")
            }
            ArchiveError::ChecksumMismatch { name, expected, actual } => write!(
                f,
                "file {name:?} failed verification: manifest crc {expected:#010x}, got {actual:#010x}"
            ),
            ArchiveError::DuplicateName(n) => write!(f, "file {n:?} already archived"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// An append-only entangled archive over any block store.
///
/// # Examples
///
/// ```
/// use ae_store::archive::Archive;
/// use ae_store::MemStore;
/// use ae_lattice::Config;
/// use std::sync::Arc;
///
/// let store = Arc::new(MemStore::new());
/// let mut ar = Archive::new(Config::new(2, 1, 2).unwrap(), 64, store);
/// ar.put("notes.txt", b"alpha entanglement").unwrap();
/// assert_eq!(ar.get("notes.txt").unwrap(), b"alpha entanglement");
/// ```
pub struct Archive<S: BlockStore> {
    code: Code,
    entangler: Entangler,
    store: Arc<S>,
    manifest: BTreeMap<String, Entry>,
}

impl<S: BlockStore> Archive<S> {
    /// Creates an empty archive writing `block_size`-byte blocks into
    /// `store`.
    pub fn new(cfg: Config, block_size: usize, store: Arc<S>) -> Self {
        let code = Code::new(cfg, block_size);
        Archive {
            entangler: code.entangler(),
            code,
            store,
            manifest: BTreeMap::new(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The code in use.
    pub fn code(&self) -> &Code {
        &self.code
    }

    /// Data blocks written so far (all files).
    pub fn blocks_written(&self) -> u64 {
        self.entangler.written()
    }

    /// Names currently archived, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.manifest.keys().map(String::as_str)
    }

    /// Manifest entry for a file.
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.manifest.get(name)
    }

    /// Archives a file: chunks, entangles, stores data + parities.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names; archives are append-only (§III: "the only
    /// assumption is that data are stored permanently").
    pub fn put(&mut self, name: &str, contents: &[u8]) -> Result<Entry, ArchiveError> {
        if self.manifest.contains_key(name) {
            return Err(ArchiveError::DuplicateName(name.to_string()));
        }
        let bs = self.code.block_size();
        let first_node = self.entangler.written() + 1;
        let mut block_count = 0;
        // Even empty files occupy one (zero) block so they have an extent.
        let chunks: Vec<&[u8]> = if contents.is_empty() {
            vec![&[]]
        } else {
            contents.chunks(bs).collect()
        };
        for chunk in chunks {
            let mut bytes = chunk.to_vec();
            bytes.resize(bs, 0);
            let out = self
                .entangler
                .entangle(Block::from_vec(bytes))
                .expect("chunk resized to block size");
            self.store.put(BlockId::Data(out.node), out.data.clone());
            for (e, b) in &out.parities {
                self.store.put(BlockId::Parity(*e), b.clone());
            }
            block_count += 1;
        }
        let entry = Entry {
            first_node,
            block_count,
            byte_len: contents.len(),
            crc: crc32(contents),
        };
        self.manifest.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Reads a file back, repairing missing blocks on the fly (a degraded
    /// read; repaired blocks are **not** written back — use
    /// [`Self::scrub`]), and verifying the manifest checksum.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, ArchiveError> {
        let entry = self
            .manifest
            .get(name)
            .ok_or_else(|| ArchiveError::UnknownFile(name.to_string()))?;
        let mut out = Vec::with_capacity(entry.byte_len);
        for i in entry.first_node..entry.first_node + entry.block_count {
            let block = self.fetch_or_repair(BlockId::Data(NodeId(i)))?;
            out.extend_from_slice(block.as_slice());
        }
        out.truncate(entry.byte_len);
        let actual = crc32(&out);
        if actual != entry.crc {
            return Err(ArchiveError::ChecksumMismatch {
                name: name.to_string(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(out)
    }

    /// Verifies every archived file end to end; returns the names that
    /// fail (unrepairable blocks or checksum mismatches).
    pub fn verify_all(&self) -> Vec<String> {
        self.manifest
            .keys()
            .filter(|name| self.get(name).is_err())
            .cloned()
            .collect()
    }

    /// Scrubs the archive: walks every block the lattice should hold and
    /// rewrites any that are missing but repairable. Returns how many
    /// blocks were restored.
    pub fn scrub(&self) -> u64 {
        let n = self.entangler.written();
        let mut restored = 0;
        // Iterate in rounds so chained repairs propagate, like the paper's
        // decoder.
        loop {
            let mut round = 0;
            for i in 1..=n {
                let mut ids = vec![BlockId::Data(NodeId(i))];
                for &class in self.code.config().classes() {
                    ids.push(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
                }
                for id in ids {
                    if self.store.contains(id) {
                        continue;
                    }
                    let mut lookup = |q: BlockId| self.store.get(q).ok();
                    if let Some(r) = decoder::repair_block(
                        self.code.config(),
                        id,
                        n,
                        self.code.zero_block(),
                        &mut lookup,
                    ) {
                        self.store.put(id, r.block);
                        round += 1;
                    }
                }
            }
            restored += round;
            if round == 0 {
                return restored;
            }
        }
    }

    fn fetch_or_repair(&self, id: BlockId) -> Result<Block, ArchiveError> {
        match self.store.get(id) {
            Ok(b) => Ok(b),
            Err(StoreError::NotFound(_)) | Err(StoreError::Corrupted(_)) => {
                // Fast path: one XOR from a complete tuple.
                let mut lookup = |q: BlockId| self.store.get(q).ok();
                if let Some(r) = decoder::repair_block(
                    self.code.config(),
                    id,
                    self.entangler.written(),
                    self.code.zero_block(),
                    &mut lookup,
                ) {
                    return Ok(r.block);
                }
                // Slow path: round-based repair into a read-side overlay,
                // so chained reconstructions work without mutating the
                // store (degraded reads stay read-only).
                self.deep_repair(id).ok_or(ArchiveError::BlockUnavailable(id))
            }
        }
    }

    /// Round-based repair of `target` into a temporary overlay: each round
    /// reconstructs every repairable missing block of the lattice until the
    /// target is available or nothing more can be fixed.
    fn deep_repair(&self, target: BlockId) -> Option<Block> {
        use std::collections::HashMap;
        let n = self.entangler.written();
        let mut overlay: HashMap<BlockId, Block> = HashMap::new();
        // All missing block ids.
        let mut missing: Vec<BlockId> = Vec::new();
        for i in 1..=n {
            let mut ids = vec![BlockId::Data(NodeId(i))];
            for &class in self.code.config().classes() {
                ids.push(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
            }
            for id in ids {
                if !self.store.contains(id) {
                    missing.push(id);
                }
            }
        }
        loop {
            let mut progressed = false;
            let mut still = Vec::new();
            for &id in &missing {
                let repaired = {
                    let mut lookup =
                        |q: BlockId| overlay.get(&q).cloned().or_else(|| self.store.get(q).ok());
                    decoder::repair_block(
                        self.code.config(),
                        id,
                        n,
                        self.code.zero_block(),
                        &mut lookup,
                    )
                };
                match repaired {
                    Some(r) => {
                        overlay.insert(id, r.block);
                        progressed = true;
                    }
                    None => still.push(id),
                }
            }
            if let Some(b) = overlay.get(&target) {
                return Some(b.clone());
            }
            if !progressed {
                return None;
            }
            missing = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn archive() -> Archive<MemStore> {
        Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::new(MemStore::new()))
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(seed).wrapping_add(3)).collect()
    }

    #[test]
    fn put_get_roundtrip_multiple_files() {
        let mut ar = archive();
        let a = payload(1000, 7);
        let b = payload(64, 11); // exactly one block
        let c = payload(65, 13); // one block + 1 byte
        ar.put("a", &a).unwrap();
        ar.put("b", &b).unwrap();
        ar.put("c", &c).unwrap();
        assert_eq!(ar.get("a").unwrap(), a);
        assert_eq!(ar.get("b").unwrap(), b);
        assert_eq!(ar.get("c").unwrap(), c);
        assert_eq!(ar.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(ar.entry("b").unwrap().block_count, 1);
        assert_eq!(ar.entry("c").unwrap().block_count, 2);
    }

    #[test]
    fn empty_file_supported() {
        let mut ar = archive();
        ar.put("empty", b"").unwrap();
        assert_eq!(ar.get("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(ar.entry("empty").unwrap().block_count, 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ar = archive();
        ar.put("x", b"1").unwrap();
        assert!(matches!(
            ar.put("x", b"2"),
            Err(ArchiveError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_file_reported() {
        let ar = archive();
        assert!(matches!(ar.get("nope"), Err(ArchiveError::UnknownFile(_))));
    }

    #[test]
    fn degraded_read_repairs_on_the_fly() {
        let mut ar = archive();
        let data = payload(640, 5);
        let entry = ar.put("f", &data).unwrap();
        // Drop three data blocks behind the archive's back.
        for k in [0, 4, 9] {
            ar.store().remove(BlockId::Data(NodeId(entry.first_node + k)));
        }
        assert_eq!(ar.get("f").unwrap(), data, "read-time repair");
        // Blocks remain missing until scrubbed.
        assert!(!ar.store().contains(BlockId::Data(NodeId(entry.first_node))));
        let restored = ar.scrub();
        assert_eq!(restored, 3);
        assert!(ar.store().contains(BlockId::Data(NodeId(entry.first_node))));
        assert_eq!(ar.scrub(), 0, "idempotent");
    }

    #[test]
    fn scrub_restores_parities_too() {
        let mut ar = archive();
        ar.put("f", &payload(640, 9)).unwrap();
        let killed = 5;
        for i in 1..=killed {
            ar.store().remove(BlockId::Parity(ae_blocks::EdgeId::new(
                ae_blocks::StrandClass::Horizontal,
                NodeId(i),
            )));
        }
        assert_eq!(ar.scrub(), killed);
        assert!(ar.verify_all().is_empty());
    }

    #[test]
    fn verify_all_flags_dead_files() {
        let mut ar = Archive::new(
            Config::new(2, 1, 1).unwrap(),
            32,
            Arc::new(MemStore::new()),
        );
        ar.put("ok", &payload(100, 3)).unwrap();
        let entry = ar.put("doomed", &payload(100, 4)).unwrap();
        // Erase a Fig 7 A dead pattern inside "doomed": two adjacent nodes
        // plus both parallel edges between them.
        let i = entry.first_node + 1;
        ar.store().remove(BlockId::Data(NodeId(i)));
        ar.store().remove(BlockId::Data(NodeId(i + 1)));
        for class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
        ] {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        assert_eq!(ar.verify_all(), vec!["doomed".to_string()]);
        assert!(ar.get("ok").is_ok());
        assert!(matches!(
            ar.get("doomed"),
            Err(ArchiveError::BlockUnavailable(_))
        ));
    }

    #[test]
    fn degraded_read_chains_repairs_when_tuples_are_broken() {
        // Erase a data block AND parts of all its tuples, leaving a repair
        // chain: the single-XOR fast path fails, the overlay rounds win.
        let mut ar = archive();
        let data = payload(640, 17);
        let entry = ar.put("f", &data).unwrap();
        let i = entry.first_node + 4;
        ar.store().remove(BlockId::Data(NodeId(i)));
        // Break every pp-tuple of d_i by removing one parity per class…
        for &class in [
            ae_blocks::StrandClass::Horizontal,
            ae_blocks::StrandClass::RightHanded,
            ae_blocks::StrandClass::LeftHanded,
        ]
        .iter()
        {
            ar.store()
                .remove(BlockId::Parity(ae_blocks::EdgeId::new(class, NodeId(i))));
        }
        // …the parities themselves are repairable (their dp-tuples are
        // intact), so a two-round read still reconstructs the file.
        assert_eq!(ar.get("f").unwrap(), data);
        // And the store was not mutated by the read.
        assert!(!ar.store().contains(BlockId::Data(NodeId(i))));
    }

    #[test]
    fn works_over_a_distributed_store_with_outages() {
        use crate::cluster::LocationId;
        use crate::distributed::DistributedStore;
        use crate::placement::Placement;

        let store = Arc::new(DistributedStore::new(30, Placement::Random { seed: 4 }));
        let mut ar = Archive::new(Config::new(3, 2, 5).unwrap(), 64, Arc::clone(&store));
        let data = payload(3000, 21);
        ar.put("big", &data).unwrap();
        store.with_cluster(|c| {
            for l in [2, 9, 16, 23] {
                c.fail(LocationId(l));
            }
        });
        assert_eq!(ar.get("big").unwrap(), data, "degraded read through outage");
    }

    #[test]
    fn error_display() {
        let e = ArchiveError::ChecksumMismatch {
            name: "f".into(),
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("verification"));
        assert!(ArchiveError::UnknownFile("x".into()).to_string().contains("x"));
    }
}
