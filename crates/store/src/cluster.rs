//! Failure domains: locations and their availability.
//!
//! A *location* models one failure domain — a disk, a machine, a rack or a
//! peer. The paper's disaster framework "simulates disasters by changing
//! the availability of a certain number of locations (10–50%) and trying to
//! repair the missing data blocks" (§V.C); this module provides exactly
//! that state and the injection helpers.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a storage location (failure domain), dense from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(pub u32);

impl fmt::Debug for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

/// A set of locations with availability state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    available: Vec<bool>,
}

impl Cluster {
    /// Creates a cluster of `n` locations, all available.
    ///
    /// # Panics
    ///
    /// Panics for `n = 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "a cluster needs at least one location");
        Cluster {
            available: vec![true; n as usize],
        }
    }

    /// Total number of locations.
    pub fn len(&self) -> u32 {
        self.available.len() as u32
    }

    /// Whether the cluster has no locations (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.available.is_empty()
    }

    /// Whether `loc` is currently available.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range location.
    pub fn is_available(&self, loc: LocationId) -> bool {
        self.available[loc.0 as usize]
    }

    /// Marks a location failed.
    pub fn fail(&mut self, loc: LocationId) {
        self.available[loc.0 as usize] = false;
    }

    /// Marks a location available again (recovered or replaced).
    pub fn restore(&mut self, loc: LocationId) {
        self.available[loc.0 as usize] = true;
    }

    /// Restores every location.
    pub fn restore_all(&mut self) {
        self.available.fill(true);
    }

    /// Currently unavailable locations.
    pub fn failed_locations(&self) -> Vec<LocationId> {
        self.available
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(i, _)| LocationId(i as u32))
            .collect()
    }

    /// Number of available locations.
    pub fn available_count(&self) -> u32 {
        self.available.iter().filter(|&&ok| ok).count() as u32
    }

    /// Injects a disaster: fails `fraction` of all locations (rounded down),
    /// chosen uniformly at random. Returns the failed locations.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn inject_disaster<R: Rng + ?Sized>(
        &mut self,
        fraction: f64,
        rng: &mut R,
    ) -> Vec<LocationId> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "disaster fraction must be in [0, 1], got {fraction}"
        );
        let count = (self.available.len() as f64 * fraction).floor() as usize;
        let mut all: Vec<u32> = (0..self.len()).collect();
        all.shuffle(rng);
        let mut failed = Vec::with_capacity(count);
        for &loc in all.iter().take(count) {
            self.available[loc as usize] = false;
            failed.push(LocationId(loc));
        }
        failed
    }

    /// Fails each location independently with probability `prob` — the
    /// uncorrelated-failure model, for contrast with massed disasters.
    pub fn inject_independent<R: Rng + ?Sized>(
        &mut self,
        prob: f64,
        rng: &mut R,
    ) -> Vec<LocationId> {
        let mut failed = Vec::new();
        for i in 0..self.available.len() {
            if self.available[i] && rng.random_bool(prob) {
                self.available[i] = false;
                failed.push(LocationId(i as u32));
            }
        }
        failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fail_and_restore() {
        let mut c = Cluster::new(10);
        assert_eq!(c.len(), 10);
        assert_eq!(c.available_count(), 10);
        c.fail(LocationId(3));
        assert!(!c.is_available(LocationId(3)));
        assert!(c.is_available(LocationId(4)));
        assert_eq!(c.failed_locations(), vec![LocationId(3)]);
        c.restore(LocationId(3));
        assert_eq!(c.available_count(), 10);
    }

    #[test]
    fn disaster_fails_exact_fraction() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = Cluster::new(100);
        let failed = c.inject_disaster(0.3, &mut rng);
        assert_eq!(failed.len(), 30);
        assert_eq!(c.available_count(), 70);
        // No duplicates.
        let set: std::collections::HashSet<_> = failed.iter().collect();
        assert_eq!(set.len(), 30);
        c.restore_all();
        assert_eq!(c.available_count(), 100);
    }

    #[test]
    fn disaster_is_deterministic_per_seed() {
        let mut a = Cluster::new(50);
        let mut b = Cluster::new(50);
        let fa = a.inject_disaster(0.2, &mut StdRng::seed_from_u64(42));
        let fb = b.inject_disaster(0.2, &mut StdRng::seed_from_u64(42));
        assert_eq!(fa, fb);
    }

    #[test]
    fn independent_failures_roughly_match_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Cluster::new(10_000);
        let failed = c.inject_independent(0.1, &mut rng);
        assert!((800..1200).contains(&failed.len()), "got {}", failed.len());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        Cluster::new(10).inject_disaster(1.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_cluster() {
        Cluster::new(0);
    }

    #[test]
    fn location_display() {
        assert_eq!(LocationId(5).to_string(), "n5");
    }
}
