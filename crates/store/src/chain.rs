//! The α = 1 entanglement chain of §IV.B.1 as a first-class
//! [`RedundancyScheme`].
//!
//! An entangled mirror array stores one parity per data block — the space
//! overhead of mirroring — where parity `p_i = d_i ⊕ p_{i-1}` chains every
//! block to its predecessors (`p_0` is the virtual zero block). Two chain
//! shapes:
//!
//! * [`ChainMode::Open`] — the plain chain; the tail parity has a single
//!   repair tuple, so the extremity pair `{d_n, p_n}` is a dead pattern.
//!   The weaker redundancy is surfaced as a typed
//!   [`ExtremityWarning`] and as
//!   [`ae_api::RepairCost::extremity_exposed`], never silently.
//! * [`ChainMode::Closed`] — after the last block the chain is tangled
//!   through the first data block once more, storing one closing parity
//!   `p_{n+1} = d_1 ⊕ p_n`. Every parity then has two repair tuples and
//!   the extremity weakness disappears.
//!
//! [`EntangledChain`] implements the full [`RedundancyScheme`] surface —
//! byte-plane encode/repair *and* the availability hooks with the O(1)
//! `dense_index`/`block_at` bijection — so the use case runs through the
//! exact same generic machinery (`SchemePlane`, parity harnesses, repair
//! planners) as AE, RS and replication. `crate::array::EntangledArray`
//! layers drive topology on top of this scheme.

use ae_api::{
    AeError, BlockSink, BlockSource, EncodeReport, RedundancyScheme, RepairCost, RepairError,
    SnapshotReader, SnapshotWriter,
};
use ae_blocks::{Block, BlockId, EdgeId, NodeId, StrandClass};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Chain shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainMode {
    /// Plain open chain.
    Open,
    /// Chain closed through the first data block after sealing.
    Closed,
}

impl fmt::Display for ChainMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChainMode::Open => "open",
            ChainMode::Closed => "closed",
        })
    }
}

/// Typed warning that an open chain leaves its extremity with a single
/// repair tuple (§IV.B.1): the blocks in `exposed` form a dead pattern —
/// losing them together is unrecoverable, unlike anywhere else in the
/// chain where two tuples overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtremityWarning {
    /// The tail data block and its only parity.
    pub exposed: Vec<BlockId>,
}

impl fmt::Display for ExtremityWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "open-chain extremity has a single repair tuple: ")?;
        for (k, id) in self.exposed.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, " form a dead pattern (close the chain to remove it)")
    }
}

/// Horizontal-strand parity `p_i` (α = 1 uses only the horizontal class).
fn parity_id(i: u64) -> BlockId {
    BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(i)))
}

/// The α = 1 open/closed entanglement chain scheme.
///
/// The byte plane streams like any scheme: [`EntangledChain::encode_batch`]
/// appends blocks and parities, [`RedundancyScheme::seal`] stores the
/// closing parity in [`ChainMode::Closed`]. The availability plane treats
/// a deployment of `data_blocks` blocks as a sealed chain: closed mode's
/// universe has `2·data_blocks + 1` positions (the closing parity last),
/// open mode `2·data_blocks`.
pub struct EntangledChain {
    mode: ChainMode,
    block_size: usize,
    /// Streaming-encoder state behind a lock, so an instance can be
    /// shared (`Arc<dyn RedundancyScheme>`) like every other scheme.
    enc: Mutex<ChainEncoderState>,
}

/// The mutable half of a streaming chain encoder.
#[derive(Debug, Clone, Default)]
struct ChainEncoderState {
    written: u64,
    /// Encoder frontier of size 1: the last parity emitted.
    last_parity: Option<Block>,
    /// First data block, kept so sealing can close the ring without
    /// reading the store back.
    first_data: Option<Block>,
    sealed: bool,
}

impl EntangledChain {
    /// Creates a chain encoding `block_size`-byte blocks (0 is allowed for
    /// availability-plane use, where no bytes ever flow).
    pub fn new(mode: ChainMode, block_size: usize) -> Self {
        EntangledChain {
            mode,
            block_size,
            enc: Mutex::new(ChainEncoderState::default()),
        }
    }

    /// The chain shape.
    pub fn mode(&self) -> ChainMode {
        self.mode
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Whether [`RedundancyScheme::seal`] has been called.
    pub fn is_sealed(&self) -> bool {
        self.enc.lock().sealed
    }

    /// Every id the chain stores right now, honouring the sealed state
    /// (the closing parity exists only after sealing a closed chain).
    pub fn stored_ids(&self) -> Vec<BlockId> {
        let (written, sealed) = {
            let enc = self.enc.lock();
            (enc.written, enc.sealed)
        };
        let mut ids = self.block_ids(written);
        if self.mode == ChainMode::Closed && written > 0 && !sealed {
            ids.pop(); // closing parity not stored yet
        }
        ids
    }

    /// The typed §IV.B.1 extremity warning for a chain of `data_blocks`
    /// blocks: `Some` for a non-empty open chain (the tail pair has a
    /// single repair tuple), `None` once the chain is closed.
    pub fn extremity_warning(&self, data_blocks: u64) -> Option<ExtremityWarning> {
        (self.mode == ChainMode::Open && data_blocks > 0).then(|| ExtremityWarning {
            exposed: vec![BlockId::Data(NodeId(data_blocks)), parity_id(data_blocks)],
        })
    }

    /// Whether the closed ring's extra tuples apply at extent `n`.
    fn ring(&self, n: u64) -> bool {
        self.mode == ChainMode::Closed && n > 0
    }
}

impl RedundancyScheme for EntangledChain {
    fn scheme_name(&self) -> String {
        format!("chain({})", self.mode)
    }

    fn data_written(&self) -> u64 {
        self.enc.lock().written
    }

    fn repair_cost(&self) -> RepairCost {
        RepairCost {
            // One XOR of two blocks per repair, mirroring's storage bill.
            single_failure_reads: 2,
            additional_storage_pct: 100.0,
            extremity_exposed: match self.mode {
                ChainMode::Open => 2, // the {d_n, p_n} dead pair
                ChainMode::Closed => 0,
            },
        }
    }

    fn encode_batch(
        &self,
        blocks: &[Block],
        sink: &dyn BlockSink,
    ) -> Result<EncodeReport, AeError> {
        let mut enc = self.enc.lock();
        assert!(!enc.sealed, "chain is sealed (closed rings cannot grow)");
        for b in blocks {
            if b.len() != self.block_size {
                return Err(AeError::SizeMismatch {
                    expected: self.block_size,
                    actual: b.len(),
                });
            }
        }
        let first_node = enc.written + 1;
        let mut ids = Vec::with_capacity(blocks.len() * 2);
        for b in blocks {
            let i = enc.written + 1;
            // p_i = d_i ⊕ p_{i-1}; p_0 is the virtual zero block.
            let parity = match &enc.last_parity {
                Some(prev) => b.xor(prev).expect("sizes checked"),
                None => b.clone(),
            };
            if enc.first_data.is_none() {
                enc.first_data = Some(b.clone());
            }
            sink.store(BlockId::Data(NodeId(i)), b.clone());
            sink.store(parity_id(i), parity.clone());
            ids.push(BlockId::Data(NodeId(i)));
            ids.push(parity_id(i));
            enc.last_parity = Some(parity);
            enc.written = i;
        }
        Ok(EncodeReport { first_node, ids })
    }

    fn seal(&self, sink: &dyn BlockSink) -> Result<Vec<BlockId>, AeError> {
        let mut enc = self.enc.lock();
        if enc.sealed {
            return Ok(Vec::new());
        }
        enc.sealed = true;
        if self.mode == ChainMode::Closed && enc.written > 0 {
            // Tangle the chain through the first data block once more:
            // p_{n+1} = d_1 ⊕ p_n.
            let d1 = enc.first_data.as_ref().expect("written > 0");
            let last = enc.last_parity.as_ref().expect("written > 0");
            let closing = d1.xor(last).expect("sizes match");
            let id = parity_id(enc.written + 1);
            sink.store(id, closing);
            return Ok(vec![id]);
        }
        Ok(Vec::new())
    }

    /// Version 1: `[written u64, sealed u8, block_size u64]`. The
    /// frontier blocks — the last emitted parity and (for closing a ring)
    /// the first data block — already live on the backend, so restore
    /// refetches them; the block size makes a mismatched chain fail typed
    /// at open instead of at the next encode.
    fn frontier_snapshot(&self) -> Vec<u8> {
        let enc = self.enc.lock();
        SnapshotWriter::new(1)
            .u64(enc.written)
            .u8(enc.sealed as u8)
            .u64(self.block_size as u64)
            .finish()
    }

    fn restore_frontier(&self, snapshot: &[u8], source: &dyn BlockSource) -> Result<(), AeError> {
        let name = self.scheme_name();
        let mut r = SnapshotReader::new(snapshot, 1, &name)?;
        let written = r.u64()?;
        let sealed = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(AeError::CorruptFrontier {
                    detail: format!("{name}: sealed flag is {other}"),
                })
            }
        };
        let block_size = r.u64()?;
        r.finish()?;
        if block_size != self.block_size as u64 {
            return Err(AeError::CorruptFrontier {
                detail: format!(
                    "{name}: snapshot encodes {block_size}-byte blocks, this chain {}",
                    self.block_size
                ),
            });
        }
        let fetch = |id: BlockId| source.fetch(id).ok_or(AeError::FrontierBlockMissing { id });
        // A sealed chain never encodes again; an unsealed one needs its
        // frontier parity, and a closed ring additionally d_1 to tangle
        // the closing parity at seal time.
        let mut state = ChainEncoderState {
            written,
            sealed,
            ..ChainEncoderState::default()
        };
        if written > 0 && !sealed {
            state.last_parity = Some(fetch(parity_id(written))?);
            if self.mode == ChainMode::Closed {
                state.first_data = Some(fetch(BlockId::Data(NodeId(1)))?);
            }
        }
        *self.enc.lock() = state;
        Ok(())
    }

    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        data_blocks: u64,
    ) -> Result<Block, RepairError> {
        let n = data_blocks;
        let ring = self.ring(n);
        let zero = || Block::zero(self.block_size);
        let get = |q: BlockId| source.fetch(q);
        // Collect the unavailable member(s) of every failed option so the
        // worklist planner can subscribe to them.
        let mut missing: Vec<BlockId> = Vec::new();
        let mut need = |q: BlockId, found: &Option<Block>| {
            if found.is_none() && !missing.contains(&q) {
                missing.push(q);
            }
        };
        match id {
            BlockId::Data(NodeId(i)) if (1..=n).contains(&i) => {
                // d_i = p_{i-1} ⊕ p_i  (p_0 = 0).
                let left = if i == 1 {
                    Some(zero())
                } else {
                    get(parity_id(i - 1))
                };
                let right = get(parity_id(i));
                if i > 1 {
                    need(parity_id(i - 1), &left);
                }
                need(parity_id(i), &right);
                if let (Some(l), Some(r)) = (left, right) {
                    return Ok(l.xor(&r).expect("sizes match"));
                }
                // The closed ring gives d_1 a second tuple: p_n ⊕ p_{n+1}.
                if ring && i == 1 {
                    let pn = get(parity_id(n));
                    let pc = get(parity_id(n + 1));
                    need(parity_id(n), &pn);
                    need(parity_id(n + 1), &pc);
                    if let (Some(pn), Some(pc)) = (pn, pc) {
                        return Ok(pn.xor(&pc).expect("sizes match"));
                    }
                }
            }
            BlockId::Data(NodeId(i)) if i > n => {
                return Err(RepairError::OutOfExtent { id, written: n });
            }
            BlockId::Parity(EdgeId {
                class: StrandClass::Horizontal,
                left: NodeId(i),
            }) if (1..=n).contains(&i) || (ring && i == n + 1) => {
                // Left dp-tuple: p_i = d_i ⊕ p_{i-1} (the closing parity's
                // "own" data block is d_1).
                let own = if i == n + 1 {
                    BlockId::Data(NodeId(1))
                } else {
                    BlockId::Data(NodeId(i))
                };
                let d = get(own);
                let prev = if i == 1 {
                    Some(zero())
                } else {
                    get(parity_id(i - 1))
                };
                need(own, &d);
                if i > 1 {
                    need(parity_id(i - 1), &prev);
                }
                if let (Some(d), Some(prev)) = (d, prev) {
                    return Ok(d.xor(&prev).expect("sizes match"));
                }
                // Right dp-tuple: p_i = d_{i+1} ⊕ p_{i+1}, where the ring
                // makes d_1/p_{n+1} the right neighbours of p_n.
                let (next_data, next_parity) = if i < n {
                    (Some(BlockId::Data(NodeId(i + 1))), Some(parity_id(i + 1)))
                } else if i == n && ring {
                    (Some(BlockId::Data(NodeId(1))), Some(parity_id(n + 1)))
                } else {
                    (None, None)
                };
                if let (Some(nd), Some(np)) = (next_data, next_parity) {
                    let d = get(nd);
                    let p = get(np);
                    need(nd, &d);
                    need(np, &p);
                    if let (Some(d), Some(p)) = (d, p) {
                        return Ok(d.xor(&p).expect("sizes match"));
                    }
                }
            }
            other => return Err(RepairError::ForeignBlock { id: other }),
        }
        Err(RepairError::NoCompleteTuple {
            target: id,
            missing,
        })
    }

    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
        let closing = self.ring(data_blocks);
        let mut out = Vec::with_capacity(data_blocks as usize * 2 + closing as usize);
        for i in 1..=data_blocks {
            out.push(BlockId::Data(NodeId(i)));
            out.push(parity_id(i));
        }
        if closing {
            out.push(parity_id(data_blocks + 1));
        }
        out
    }

    fn is_repairable(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        let n = data_blocks;
        let ring = self.ring(n);
        match id {
            BlockId::Data(NodeId(i)) if (1..=n).contains(&i) => {
                ((i == 1 || avail(parity_id(i - 1))) && avail(parity_id(i)))
                    || (ring && i == 1 && avail(parity_id(n)) && avail(parity_id(n + 1)))
            }
            BlockId::Parity(EdgeId {
                class: StrandClass::Horizontal,
                left: NodeId(i),
            }) if (1..=n).contains(&i) || (ring && i == n + 1) => {
                let own = if i == n + 1 { NodeId(1) } else { NodeId(i) };
                if avail(BlockId::Data(own)) && (i == 1 || avail(parity_id(i - 1))) {
                    return true;
                }
                if i < n {
                    avail(BlockId::Data(NodeId(i + 1))) && avail(parity_id(i + 1))
                } else if i == n && ring {
                    avail(BlockId::Data(NodeId(1))) && avail(parity_id(n + 1))
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn maintenance_targets(&self, missing_data: &[BlockId], data_blocks: u64) -> Vec<BlockId> {
        // The parities of a missing data block's pp-tuple(s): its input and
        // output parity, plus the ring pair for d_1 on a closed chain.
        let mut out = Vec::new();
        for id in missing_data {
            let BlockId::Data(NodeId(i)) = *id else {
                continue;
            };
            if i > 1 {
                out.push(parity_id(i - 1));
            }
            if i <= data_blocks {
                out.push(parity_id(i));
            }
            if self.ring(data_blocks) && i == 1 {
                out.push(parity_id(data_blocks));
                out.push(parity_id(data_blocks + 1));
            }
        }
        out
    }

    fn universe_len(&self, data_blocks: u64) -> u64 {
        data_blocks * 2 + self.ring(data_blocks) as u64
    }

    fn dense_index(&self, id: &BlockId, data_blocks: u64) -> Option<u32> {
        // block_ids order: d_1, p_1, d_2, p_2, …, d_n, p_n (, p_{n+1}).
        let n = data_blocks;
        let idx = match *id {
            BlockId::Data(NodeId(i)) if (1..=n).contains(&i) => (i - 1) * 2,
            BlockId::Parity(EdgeId {
                class: StrandClass::Horizontal,
                left: NodeId(i),
            }) if (1..=n).contains(&i) => (i - 1) * 2 + 1,
            BlockId::Parity(EdgeId {
                class: StrandClass::Horizontal,
                left: NodeId(i),
            }) if self.ring(n) && i == n + 1 => n * 2,
            _ => return None,
        };
        u32::try_from(idx).ok()
    }

    fn block_at(&self, k: u32, data_blocks: u64) -> Option<BlockId> {
        let n = data_blocks;
        let k = u64::from(k);
        if self.ring(n) && k == n * 2 {
            return Some(parity_id(n + 1));
        }
        let i = k / 2 + 1;
        if i > n {
            return None;
        }
        Some(if k % 2 == 0 {
            BlockId::Data(NodeId(i))
        } else {
            parity_id(i)
        })
    }

    fn supports_dense_index(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_api::BlockMap;

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn payload(n: usize) -> Vec<Block> {
        (0..n)
            .map(|k| Block::from_vec((0..16).map(|b| ((k * 13 + b) % 251) as u8).collect()))
            .collect()
    }

    fn encoded(mode: ChainMode, n: usize) -> (EntangledChain, BlockMap, Vec<Block>) {
        let chain = EntangledChain::new(mode, 16);
        let store = BlockMap::new();
        let blocks = payload(n);
        chain.encode_batch(&blocks, &store).unwrap();
        chain.seal(&store).unwrap();
        (chain, store, blocks)
    }

    #[test]
    fn chain_identity_holds() {
        let (_, store, blocks) = encoded(ChainMode::Open, 10);
        // p_i = d_i ⊕ p_{i-1}, so p_1 = d_1 and p_i chains forward.
        assert_eq!(store.get(&parity_id(1)).unwrap(), blocks[0]);
        let p2 = blocks[1].xor(&store.get(&parity_id(1)).unwrap()).unwrap();
        assert_eq!(store.get(&parity_id(2)).unwrap(), p2);
    }

    #[test]
    fn closed_seal_emits_ring_parity() {
        let (chain, store, blocks) = encoded(ChainMode::Closed, 10);
        assert!(chain.is_sealed());
        let closing = store.get(&parity_id(11)).expect("closing parity");
        assert_eq!(
            closing,
            blocks[0].xor(&store.get(&parity_id(10)).unwrap()).unwrap()
        );
        // Universe includes it, at the last dense position.
        assert_eq!(chain.universe_len(10), 21);
        assert_eq!(chain.dense_index(&parity_id(11), 10), Some(20));
        assert_eq!(chain.block_at(20, 10), Some(parity_id(11)));
    }

    #[test]
    fn bijection_matches_enumeration_both_modes() {
        for mode in [ChainMode::Open, ChainMode::Closed] {
            let chain = EntangledChain::new(mode, 0);
            for n in [1u64, 7, 40] {
                let ids = chain.block_ids(n);
                assert_eq!(chain.universe_len(n), ids.len() as u64, "{mode} n={n}");
                for (k, id) in ids.iter().enumerate() {
                    assert_eq!(chain.dense_index(id, n), Some(k as u32), "{mode} {id}");
                    assert_eq!(chain.block_at(k as u32, n), Some(*id), "{mode} {k}");
                }
                assert_eq!(chain.block_at(ids.len() as u32, n), None);
                // Foreign and out-of-universe ids.
                assert_eq!(chain.dense_index(&data(n + 1), n), None);
                let helical = BlockId::Parity(EdgeId::new(StrandClass::RightHanded, NodeId(1)));
                assert_eq!(chain.dense_index(&helical, n), None);
            }
        }
    }

    #[test]
    fn open_extremity_is_dead_closed_survives() {
        for (mode, survives) in [(ChainMode::Open, false), (ChainMode::Closed, true)] {
            let (chain, store, blocks) = encoded(mode, 10);
            store.remove(&data(10));
            store.remove(&parity_id(10));
            let summary = chain.repair_missing(&store, &[data(10), parity_id(10)], 10);
            assert_eq!(summary.fully_recovered(), survives, "{mode}");
            if survives {
                assert_eq!(store.get(&data(10)).unwrap(), blocks[9]);
            }
        }
    }

    #[test]
    fn extremity_warning_and_cost_are_typed() {
        let open = EntangledChain::new(ChainMode::Open, 16);
        let warn = open.extremity_warning(10).expect("open chains warn");
        assert_eq!(warn.exposed, vec![data(10), parity_id(10)]);
        assert!(warn.to_string().contains("dead pattern"));
        assert_eq!(open.repair_cost().extremity_exposed, 2);
        assert_eq!(open.repair_cost().single_failure_reads, 2);

        let closed = EntangledChain::new(ChainMode::Closed, 16);
        assert!(closed.extremity_warning(10).is_none());
        assert_eq!(closed.repair_cost().extremity_exposed, 0);
    }

    #[test]
    fn repair_errors_name_missing_members() {
        let chain = EntangledChain::new(ChainMode::Open, 16);
        let err = chain
            .repair_block(&BlockMap::new(), data(5), 10)
            .unwrap_err();
        assert_eq!(err.missing_blocks(), &[parity_id(4), parity_id(5)]);
        let err = chain
            .repair_block(&BlockMap::new(), parity_id(5), 10)
            .unwrap_err();
        assert!(err.missing_blocks().contains(&data(5)));
        assert!(err.missing_blocks().contains(&data(6)));
        assert!(matches!(
            chain.repair_block(&BlockMap::new(), data(11), 10),
            Err(RepairError::OutOfExtent { written: 10, .. })
        ));
        let foreign = BlockId::Shard(ae_blocks::ShardId {
            stripe: 0,
            index: 0,
        });
        assert!(matches!(
            chain.repair_block(&BlockMap::new(), foreign, 10),
            Err(RepairError::ForeignBlock { .. })
        ));
    }

    #[test]
    fn frontier_restores_mid_stream_and_sealed_chains() {
        for mode in [ChainMode::Open, ChainMode::Closed] {
            // Mid-stream: restored chains keep chaining bit-identically.
            let chain = EntangledChain::new(mode, 16);
            let store = BlockMap::new();
            chain.encode_batch(&payload(6), &store).unwrap();
            let resumed = EntangledChain::new(mode, 16);
            resumed
                .restore_frontier(&chain.frontier_snapshot(), &store)
                .unwrap();
            assert_eq!(resumed.data_written(), 6, "{mode}");
            let (a, b) = (BlockMap::new(), BlockMap::new());
            let more = payload(9).split_off(6);
            chain.encode_batch(&more, &a).unwrap();
            resumed.encode_batch(&more, &b).unwrap();
            chain.seal(&a).unwrap();
            resumed.seal(&b).unwrap();
            assert_eq!(a, b, "{mode}: continuation + closing parity agree");

            // Sealed: restore needs nothing from the backend and re-seal
            // stays a no-op (no duplicate closing parity).
            let sealed = EntangledChain::new(mode, 16);
            sealed
                .restore_frontier(&resumed.frontier_snapshot(), &BlockMap::new())
                .unwrap();
            assert!(sealed.is_sealed(), "{mode}");
            assert_eq!(sealed.seal(&BlockMap::new()).unwrap(), Vec::new());

            // Losing the frontier parity is a typed, named failure.
            store.remove(&parity_id(6));
            let broken = EntangledChain::new(mode, 16);
            assert!(matches!(
                broken.restore_frontier(&chain_snapshot_at(6), &store),
                Err(AeError::FrontierBlockMissing { id }) if id == parity_id(6)
            ));
        }
    }

    /// An unsealed version-1 snapshot at `written` 16-byte blocks.
    fn chain_snapshot_at(written: u64) -> Vec<u8> {
        ae_api::SnapshotWriter::new(1)
            .u64(written)
            .u8(0)
            .u64(16)
            .finish()
    }

    #[test]
    fn stored_ids_track_seal_state() {
        let chain = EntangledChain::new(ChainMode::Closed, 16);
        let store = BlockMap::new();
        chain.encode_batch(&payload(4), &store).unwrap();
        assert_eq!(chain.stored_ids().len(), 8, "no closing parity yet");
        chain.seal(&store).unwrap();
        assert_eq!(chain.stored_ids().len(), 9);
        assert_eq!(chain.stored_ids(), chain.block_ids(4));
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn encode_after_seal_panics() {
        let (chain, store, _) = encoded(ChainMode::Closed, 4);
        chain.encode_batch(&payload(1), &store).unwrap();
    }
}
