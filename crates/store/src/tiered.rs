//! A two-tier backend: a fast local tier over a shared remote tier.
//!
//! The §IV.A cooperative backup keeps a user's data blocks on their own
//! machine and pushes redundancy to geographically distributed nodes.
//! [`TieredStore`] promotes that routing — formerly the private
//! `TierSink`/`TierSource` adapters inside [`crate::GeoBackup`] — into a
//! first-class backend of the unified [`ae_api`] family: data blocks land
//! on the fast local [`MemStore`], everything else (parities, shards,
//! replicas) on a shared remote backend, and reads route the same way.
//!
//! Because it is just another [`ae_api::BlockRepo`], the same archive,
//! encoder and repair code that runs over a [`MemStore`] runs over a
//! tiered deployment unchanged — including disaster flows: drop the fast
//! tier ([`TieredStore::drop_fast`], a local disk crash) and degraded
//! reads reconstruct data from the surviving remote redundancy; fail
//! remote locations and scrubbing regenerates what they held.

use crate::store::MemStore;
use ae_api::{BlockRepo, BlockSink, BlockSource, StoreError};
use ae_blocks::{Block, BlockId};
use std::sync::Arc;

/// A fast local tier (data blocks) over a shared remote tier (redundancy).
///
/// `S` is any backend — a [`crate::DistributedStore`] of storage nodes in
/// the geo scenario, another [`MemStore`] in tests, or a further
/// `TieredStore` for deeper hierarchies.
#[derive(Debug)]
pub struct TieredStore<S: BlockRepo + Send + ?Sized> {
    fast: MemStore,
    shared: Arc<S>,
}

impl<S: BlockRepo + Send + ?Sized> TieredStore<S> {
    /// Creates an empty fast tier over `shared`.
    pub fn new(shared: Arc<S>) -> Self {
        TieredStore {
            fast: MemStore::new(),
            shared,
        }
    }

    /// The fast local tier.
    pub fn fast(&self) -> &MemStore {
        &self.fast
    }

    /// The shared remote tier.
    pub fn shared(&self) -> &Arc<S> {
        &self.shared
    }

    /// Whether `id` routes to the fast tier (data) or the remote tier
    /// (redundancy) — the §IV.A split.
    fn is_fast(id: BlockId) -> bool {
        id.is_data()
    }

    /// Simulates losing the whole local tier (disk crash): every block on
    /// it is dropped. Returns how many blocks were lost.
    pub fn drop_fast(&self) -> usize {
        let ids = self.fast.ids();
        for id in &ids {
            self.fast.remove(*id);
        }
        ids.len()
    }
}

impl<S: BlockRepo + Send + ?Sized> BlockSource for TieredStore<S> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        if Self::is_fast(id) {
            self.fast.fetch(id)
        } else {
            self.shared.fetch(id)
        }
    }

    fn has(&self, id: BlockId) -> bool {
        if Self::is_fast(id) {
            self.fast.has(id)
        } else {
            self.shared.has(id)
        }
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        if Self::is_fast(id) {
            self.fast.read(id)
        } else {
            self.shared.read(id)
        }
    }
}

impl<S: BlockRepo + Send + ?Sized> BlockSink for TieredStore<S> {
    fn store(&self, id: BlockId, block: Block) {
        if Self::is_fast(id) {
            self.fast.put(id, block);
        } else {
            self.shared.store(id, block);
        }
    }

    fn remove(&self, id: BlockId) -> bool {
        if Self::is_fast(id) {
            self.fast.remove(id)
        } else {
            self.shared.remove(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::{EdgeId, NodeId, StrandClass};

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn parity(i: u64) -> BlockId {
        BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(i)))
    }

    #[test]
    fn routes_data_fast_and_redundancy_shared() {
        let shared = Arc::new(MemStore::new());
        let tiered = TieredStore::new(Arc::clone(&shared));
        tiered.store(data(1), Block::from_vec(vec![1]));
        tiered.store(parity(1), Block::from_vec(vec![2]));
        assert!(tiered.fast().contains(data(1)));
        assert!(!tiered.fast().contains(parity(1)));
        assert!(shared.contains(parity(1)));
        assert_eq!(tiered.fetch(data(1)).unwrap().as_slice(), &[1]);
        assert_eq!(tiered.fetch(parity(1)).unwrap().as_slice(), &[2]);
        assert!(tiered.remove(parity(1)));
        assert!(!shared.contains(parity(1)));
    }

    #[test]
    fn drop_fast_loses_only_the_local_tier() {
        let tiered = TieredStore::new(Arc::new(MemStore::new()));
        for i in 1..=5 {
            tiered.store(data(i), Block::zero(4));
            tiered.store(parity(i), Block::zero(4));
        }
        assert_eq!(tiered.drop_fast(), 5);
        assert!(!tiered.has(data(3)));
        assert!(tiered.has(parity(3)), "remote tier survives");
        assert_eq!(tiered.read(data(3)), Err(StoreError::NotFound(data(3))));
    }
}
