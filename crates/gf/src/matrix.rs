//! Dense matrices over GF(2^8).
//!
//! Reed-Solomon encoding multiplies the data vector by a generator matrix;
//! erasure decoding inverts the square submatrix of surviving rows. This
//! module provides exactly that machinery, plus the Vandermonde and Cauchy
//! constructions that guarantee every k×k submatrix is invertible.

use crate::field::Gf256;
use std::fmt;

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

/// Errors from matrix algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Inner dimensions of a product, or the shape required by an operation,
    /// did not match.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
    /// Gaussian elimination found no usable pivot: the matrix is singular.
    Singular,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op } => write!(f, "dimension mismatch in {op}"),
            MatrixError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the n×n identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from rows of raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<u8>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix::from_fn(rows.len(), cols, |r, c| Gf256(rows[r][c]))
    }

    /// The `rows × cols` Vandermonde matrix `V[r][c] = r^c` over GF(2^8)
    /// with evaluation points `0, 1, …, rows−1`.
    ///
    /// Used as the starting point for the systematic RS generator; after the
    /// systematization step every k×k submatrix remains invertible.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        Matrix::from_fn(rows, cols, |r, c| Gf256(r as u8).pow(c as u64))
    }

    /// The `m × k` Cauchy matrix `C[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i + k` and `y_j = j`, all elements distinct.
    ///
    /// Every square submatrix of a Cauchy matrix is invertible, so
    /// `[I; C]` is a valid systematic RS generator as long as `m + k ≤ 256`.
    ///
    /// # Panics
    ///
    /// Panics if `m + k > 256` (the field runs out of distinct points).
    pub fn cauchy(m: usize, k: usize) -> Self {
        assert!(m + k <= 256, "Cauchy construction needs m + k <= 256");
        Matrix::from_fn(m, k, |i, j| (Gf256((i + k) as u8) + Gf256(j as u8)).inv())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Gf256] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix keeping only the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        Matrix::from_fn(rows.len(), self.cols, |r, c| self[(rows[r], c)])
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Fails if the column counts differ.
    pub fn stack(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch { op: "stack" });
        }
        let mut m = Matrix::zero(self.rows + other.rows, self.cols);
        m.data[..self.data.len()].copy_from_slice(&self.data);
        m.data[self.data.len()..].copy_from_slice(&other.data);
        Ok(m)
    }

    /// Matrix product `self · rhs`.
    ///
    /// Each output row is a linear combination of `rhs` rows, so the inner
    /// step is one [`crate::field::mul_slice_acc`] over a contiguous byte
    /// row — the same runtime-dispatched vector kernel the RS data path
    /// uses, rather than an element-at-a-time log/exp loop.
    ///
    /// # Errors
    ///
    /// Fails if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch { op: "mul" });
        }
        let rhs_rows: Vec<Vec<u8>> = (0..rhs.rows)
            .map(|r| rhs.row(r).iter().map(|g| g.0).collect())
            .collect();
        let mut out = Matrix::zero(self.rows, rhs.cols);
        let mut acc = vec![0u8; rhs.cols];
        for r in 0..self.rows {
            acc.fill(0);
            for (k, rhs_row) in rhs_rows.iter().enumerate() {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                crate::field::mul_slice_acc(a, rhs_row, &mut acc);
            }
            for (c, &v) in acc.iter().enumerate() {
                out[(r, c)] = Gf256(v);
            }
        }
        Ok(out)
    }

    /// Inverts a square matrix by Gauss-Jordan elimination with partial
    /// pivoting (any nonzero pivot works in a field).
    ///
    /// # Errors
    ///
    /// Fails with [`MatrixError::Singular`] if no inverse exists, and with
    /// [`MatrixError::DimensionMismatch`] if the matrix is not square.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::DimensionMismatch { op: "inverse" });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a row at or below `col` with a nonzero pivot.
            let pivot = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                .ok_or(MatrixError::Singular)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a[(col, col)].inv();
            a.scale_row(col, p);
            inv.scale_row(col, p);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r != col && !a[(r, col)].is_zero() {
                    let f = a[(r, col)];
                    a.axpy_row(col, r, f);
                    inv.axpy_row(col, r, f);
                }
            }
        }
        Ok(inv)
    }

    /// Rank via Gaussian elimination (used by tests to certify generator
    /// matrices are MDS).
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..a.cols {
            if rank == a.rows {
                break;
            }
            let Some(pivot) = (rank..a.rows).find(|&r| !a[(r, col)].is_zero()) else {
                continue;
            };
            a.swap_rows(pivot, rank);
            let p = a[(rank, col)].inv();
            a.scale_row(rank, p);
            for r in 0..a.rows {
                if r != rank && !a[(r, col)].is_zero() {
                    let f = a[(r, col)];
                    a.axpy_row(rank, r, f);
                }
            }
            rank += 1;
        }
        rank
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, f: Gf256) {
        for c in 0..self.cols {
            self[(r, c)] *= f;
        }
    }

    /// `row[dst] += f * row[src]`.
    fn axpy_row(&mut self, src: usize, dst: usize, f: Gf256) {
        for c in 0..self.cols {
            let v = f * self[(src, c)];
            self[(dst, c)] += v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self[(r, c)].0)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let m = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(i.mul(&m).unwrap(), m);
        assert_eq!(m.mul(&i).unwrap(), m);
    }

    #[test]
    fn inverse_roundtrip_vandermonde() {
        // Vandermonde with distinct points is invertible.
        let m = Matrix::from_fn(5, 5, |r, c| Gf256((r + 1) as u8).pow(c as u64));
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(5));
        assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(5));
    }

    #[test]
    fn singular_matrix_detected() {
        // Two equal rows.
        let m = Matrix::from_rows(&[vec![1, 2, 3], vec![1, 2, 3], vec![0, 1, 0]]);
        assert_eq!(m.inverse().unwrap_err(), MatrixError::Singular);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn non_square_inverse_rejected() {
        let m = Matrix::zero(2, 3);
        assert!(matches!(
            m.inverse(),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cauchy_every_square_submatrix_invertible() {
        // Exhaustively check all 2x2 submatrices of a 4x6 Cauchy matrix.
        let m = Matrix::cauchy(4, 6);
        for r0 in 0..4 {
            for r1 in (r0 + 1)..4 {
                for c0 in 0..6 {
                    for c1 in (c0 + 1)..6 {
                        let sub = Matrix::from_fn(2, 2, |r, c| {
                            m[(if r == 0 { r0 } else { r1 }, if c == 0 { c0 } else { c1 })]
                        });
                        assert!(sub.inverse().is_ok(), "submatrix ({r0},{r1})x({c0},{c1})");
                    }
                }
            }
        }
    }

    #[test]
    fn stack_and_select_rows() {
        let top = Matrix::identity(2);
        let bottom = Matrix::cauchy(3, 2);
        let g = top.stack(&bottom).unwrap();
        assert_eq!(g.rows(), 5);
        let picked = g.select_rows(&[0, 3]);
        assert_eq!(picked.rows(), 2);
        assert_eq!(picked.row(0), Matrix::identity(2).row(0));
        assert_eq!(picked.row(1), bottom.row(1));
    }

    #[test]
    fn stack_dimension_mismatch() {
        let a = Matrix::zero(1, 2);
        let b = Matrix::zero(1, 3);
        assert!(a.stack(&b).is_err());
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn rank_of_mds_generator_submatrices() {
        // Systematic Cauchy generator for k=4, m=3: any 4 rows have rank 4.
        let k = 4;
        let g = Matrix::identity(k).stack(&Matrix::cauchy(3, k)).unwrap();
        // Check a handful of row subsets including parities.
        for rows in [
            vec![0usize, 1, 2, 3],
            vec![0, 1, 2, 4],
            vec![0, 1, 5, 6],
            vec![3, 4, 5, 6],
            vec![0, 4, 5, 6],
        ] {
            assert_eq!(g.select_rows(&rows).rank(), k, "rows {rows:?}");
        }
    }
}
