//! GF(2^8) arithmetic and matrix algebra.
//!
//! The paper evaluates alpha entanglement codes against Reed-Solomon codes,
//! "a sort of de-facto industry standard for erasure coding" (§IV.B.2). This
//! crate is the arithmetic substrate for that baseline, built from scratch:
//!
//! * [`field`] — the finite field GF(2^8) with the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11D, the usual Reed-Solomon choice),
//!   using log/exp tables for O(1) multiplication and division.
//! * [`matrix`] — dense matrices over GF(2^8): multiplication, Gaussian
//!   elimination, inversion, and the Vandermonde/Cauchy constructions used
//!   to build systematic RS generator matrices.
//!
//! Nothing in this crate is specific to storage; it is plain coding-theory
//! machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod matrix;

pub use field::Gf256;
pub use matrix::Matrix;
