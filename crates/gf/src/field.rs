//! The finite field GF(2^8).
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (bit pattern `0x11D`), the conventional
//! choice for Reed-Solomon storage codes (Plank's tutorial, reference \[2\] of
//! the paper). The generator `g = 2` is primitive for this polynomial, so
//! `exp`/`log` tables over powers of 2 give O(1) multiplication, division
//! and exponentiation.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// The primitive polynomial, including the x^8 term.
const PRIM_POLY: u16 = 0x11D;

/// Order of the multiplicative group.
const GROUP_ORDER: usize = 255;

struct Tables {
    /// `exp[i] = g^i` for i in 0..510 (doubled so lookups skip a mod).
    exp: [u8; 510],
    /// `log[x]` for x in 1..=255; `log[0]` is unused and set to 0.
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 510];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(GROUP_ORDER) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIM_POLY;
            }
        }
        // Duplicate the cycle so exp[log a + log b] needs no reduction.
        for i in GROUP_ORDER..510 {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2^8).
///
/// # Examples
///
/// ```
/// use ae_gf::Gf256;
///
/// let a = Gf256(0x53);
/// let b = Gf256(0xCA);
/// // Addition is XOR and every element is its own additive inverse.
/// assert_eq!(a + b, Gf256(0x99));
/// assert_eq!(a + a, Gf256(0));
/// // Multiplication distributes and inverts.
/// let prod = a * b;
/// assert_eq!(prod / b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical generator of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Whether this is the zero element.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `g^e` where `g = 2` is the generator; exponents wrap mod 255.
    pub fn pow_of_generator(e: u64) -> Gf256 {
        Gf256(tables().exp[(e % GROUP_ORDER as u64) as usize])
    }

    /// `self^e` by table lookup (O(1)); `0^0 = 1` by convention.
    pub fn pow(self, e: u64) -> Gf256 {
        if self.is_zero() {
            return if e == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let t = tables();
        let l = t.log[self.0 as usize] as u64;
        Gf256(t.exp[((l * (e % GROUP_ORDER as u64)) % GROUP_ORDER as u64) as usize])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero, which has no inverse; hitting this means a singular
    /// matrix slipped past the construction-time checks.
    pub fn inv(self) -> Gf256 {
        assert!(
            !self.is_zero(),
            "zero has no multiplicative inverse in GF(2^8)"
        );
        let t = tables();
        Gf256(t.exp[GROUP_ORDER - t.log[self.0 as usize] as usize])
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    // In characteristic 2, addition IS XOR.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    // Characteristic 2: subtraction and addition coincide.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction and addition coincide.
        self + rhs
    }
}

impl SubAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn sub_assign(&mut self, rhs: Gf256) {
        *self += rhs;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.is_zero() || rhs.is_zero() {
            return Gf256::ZERO;
        }
        let t = tables();
        Gf256(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Gf256) -> Gf256 {
        assert!(!rhs.is_zero(), "division by zero in GF(2^8)");
        if self.is_zero() {
            return Gf256::ZERO;
        }
        let t = tables();
        let diff = GROUP_ORDER + t.log[self.0 as usize] as usize - t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[diff % GROUP_ORDER])
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        <Self as fmt::Debug>::fmt(self, f)
    }
}

impl From<u8> for Gf256 {
    fn from(b: u8) -> Self {
        Gf256(b)
    }
}

/// Multiplies every byte of `data` by the constant `c`, accumulating
/// (`acc[i] += c * data[i]`) — the inner kernel of RS encoding and decoding.
///
/// Delegates to the runtime-dispatched [`ae_kernels::mul_slice_acc`]: a
/// split-nibble `PSHUFB`/`TBL` vector multiply on x86-64/AArch64, the
/// branch-free two-level table loop elsewhere. The kernel layer also short
/// circuits `c = 0` (no-op) and `c = 1` (plain XOR).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_slice_acc(c: Gf256, data: &[u8], acc: &mut [u8]) {
    assert_eq!(
        data.len(),
        acc.len(),
        "mul_slice_acc requires equal lengths"
    );
    ae_kernels::mul_slice_acc(c.0, data, acc);
}

/// Reference implementation of [`mul_slice_acc`] on the log/exp tables,
/// kept for parity tests against the dispatched kernels.
///
/// The naive loop pays a `d != 0` branch per byte (zero has no logarithm).
/// Here that branch is hoisted out: a 256-entry product row is built once
/// per call — `row[d] = exp[log c + log d]` with `row[0] = 0`, the doubled
/// `exp` table absorbing the mod-255 reduction — and the inner loop is a
/// single unconditional lookup-XOR per byte.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_slice_acc_ref(c: Gf256, data: &[u8], acc: &mut [u8]) {
    assert_eq!(
        data.len(),
        acc.len(),
        "mul_slice_acc requires equal lengths"
    );
    if c.is_zero() {
        return;
    }
    let t = tables();
    let lc = t.log[c.0 as usize] as usize;
    let mut row = [0u8; 256];
    for (d, slot) in row.iter_mut().enumerate().skip(1) {
        *slot = t.exp[lc + t.log[d] as usize];
    }
    for (a, &d) in acc.iter_mut().zip(data) {
        *a ^= row[d as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            let x = Gf256(a);
            assert_eq!(x + x, Gf256::ZERO);
            assert_eq!(x + Gf256::ZERO, x);
            assert_eq!(-x, x);
            assert_eq!(x - x, Gf256::ZERO);
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            let x = Gf256(a);
            assert_eq!(x * Gf256::ONE, x);
            assert_eq!(x * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let x = Gf256(a);
            assert_eq!(x * x.inv(), Gf256::ONE, "inverse of {a:#04x}");
            assert_eq!(x / x, Gf256::ONE);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g^k for k in 0..255 must enumerate all 255 nonzero elements.
        let mut seen = [false; 256];
        for k in 0..255u64 {
            let v = Gf256::pow_of_generator(k);
            assert!(!v.is_zero());
            assert!(!seen[v.0 as usize], "g^{k} repeated");
            seen[v.0 as usize] = true;
        }
    }

    #[test]
    fn known_products() {
        // Hand-checked against the 0x11D tables used by Plank's tutorial.
        assert_eq!(Gf256(2) * Gf256(2), Gf256(4));
        assert_eq!(Gf256(0x80) * Gf256(2), Gf256(0x1D)); // wraps the polynomial
        assert_eq!(Gf256(0xFF) * Gf256(0xFF), Gf256(0xE2));
    }

    #[test]
    fn mul_is_commutative_and_associative_spot() {
        for &(a, b, c) in &[(3u8, 7u8, 200u8), (0x53, 0xCA, 0x01), (255, 254, 253)] {
            let (x, y, z) = (Gf256(a), Gf256(b), Gf256(c));
            assert_eq!(x * y, y * x);
            assert_eq!((x * y) * z, x * (y * z));
            assert_eq!(x * (y + z), x * y + x * z, "distributivity");
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = Gf256(0x37);
        let mut acc = Gf256::ONE;
        for e in 0..300u64 {
            assert_eq!(x.pow(e), acc, "exponent {e}");
            acc *= x;
        }
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_of_zero_panics() {
        Gf256::ZERO.inv();
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf256(3) / Gf256::ZERO;
    }

    #[test]
    fn mul_slice_acc_matches_scalar_loop() {
        let data: Vec<u8> = (0..64u8).map(|x| x.wrapping_mul(11)).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut acc = vec![0xA5u8; 64];
            let mut want = acc.clone();
            mul_slice_acc(Gf256(c), &data, &mut acc);
            for (w, &d) in want.iter_mut().zip(&data) {
                *w ^= (Gf256(c) * Gf256(d)).0;
            }
            assert_eq!(acc, want, "constant {c:#04x}");
        }
    }
}
