//! Pins the dispatched GF(2^8) multiply kernel byte-identical to the
//! log/exp reference ([`ae_gf::field::mul_slice_acc_ref`]) for all 256
//! constants, and spot-checks the kernel-backed matrix product against an
//! element-at-a-time triple loop.

use ae_gf::field::{mul_slice_acc, mul_slice_acc_ref};
use ae_gf::{Gf256, Matrix};
use proptest::prelude::*;

/// Deterministic pseudo-random buffer.
fn buf(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

#[test]
fn dispatched_mul_matches_log_exp_reference_for_all_256_constants() {
    let data = buf(997, 42);
    for c in 0..=255u8 {
        let mut got = buf(997, 7);
        let mut want = got.clone();
        mul_slice_acc(Gf256(c), &data, &mut got);
        mul_slice_acc_ref(Gf256(c), &data, &mut want);
        assert_eq!(got, want, "constant {c:#04x}");
    }
}

#[test]
fn matrix_mul_matches_element_wise_product() {
    let a = Matrix::from_fn(5, 7, |r, c| Gf256((r * 31 + c * 7 + 1) as u8));
    let b = Matrix::from_fn(7, 6, |r, c| Gf256((r * 13 + c * 17 + 3) as u8));
    let got = a.mul(&b).unwrap();
    for r in 0..5 {
        for c in 0..6 {
            let mut want = Gf256::ZERO;
            for k in 0..7 {
                want += a[(r, k)] * b[(k, c)];
            }
            assert_eq!(got[(r, c)], want, "({r},{c})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Dispatched vs reference over random constants, lengths and
    /// unaligned views.
    #[test]
    fn dispatched_matches_reference(
        c: u8,
        len in 0usize..600,
        offset in 0usize..32,
        seed: u64,
    ) {
        let data = buf(len + offset, seed);
        let data = &data[offset..];
        let mut got = buf(len, seed ^ 0xABCD);
        let mut want = got.clone();
        mul_slice_acc(Gf256(c), data, &mut got);
        mul_slice_acc_ref(Gf256(c), data, &mut want);
        prop_assert_eq!(got, want, "constant {:#04x}", c);
    }
}
