//! Parity proptests: every kernel tier the host supports must be
//! byte-identical to ground truth, across lengths straddling every
//! vector width, unaligned sub-slice views, and all 256 GF constants.
//!
//! Ground truth is deliberately naive — byte-at-a-time XOR, the
//! carry-less [`tables::gf_mul`] product, bitwise CRC32 — so nothing in
//! the fast paths (tables included) is assumed by the reference.

use ae_kernels::{supported_sets, tables};
use proptest::prelude::*;

/// Bitwise (table-free) CRC32 state update, reflected IEEE 802.3.
fn crc32_bitwise(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c ^= b as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ tables::CRC_POLY
            } else {
                c >> 1
            };
        }
    }
    c
}

/// Deterministic pseudo-random buffer with `len` bytes.
fn buf(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Lengths straddling the byte tail, the 8-byte lanes, one XMM, one YMM,
/// the 64/128-byte unrolled bodies and the 64-byte PCLMUL threshold.
const EDGE_LENS: &[usize] = &[
    0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 79, 127, 128, 129, 255, 256, 257, 1024, 4096,
];

#[test]
fn xor_matches_reference_at_edge_lengths_and_alignments() {
    for set in supported_sets() {
        for &len in EDGE_LENS {
            for offset in [0usize, 1, 3, 8, 13, 31] {
                let a = buf(len + offset, 11 * len as u64 + 1);
                let b = buf(len + offset, 17 * len as u64 + 3);
                // Unaligned views: start `offset` bytes into the buffers.
                let (a, b) = (&a[offset..], &b[offset..]);
                let want: Vec<u8> = a.iter().zip(b).map(|(x, y)| x ^ y).collect();

                let mut dst = a.to_vec();
                set.xor_into(&mut dst, b);
                assert_eq!(dst, want, "{} xor_into len={len} off={offset}", set.name);

                let mut dst3 = vec![0u8; len];
                set.xor3(&mut dst3, a, b);
                assert_eq!(dst3, want, "{} xor3 len={len} off={offset}", set.name);
            }
        }
    }
}

#[test]
fn gf_multiply_matches_reference_for_all_256_constants() {
    // Every constant × every tier, over a length that exercises the
    // vector body and a ragged tail, plus an unaligned view.
    let data = buf(1000, 77);
    let data = &data[3..]; // 997 bytes, offset 3
    for set in supported_sets() {
        for c in 0..=255u8 {
            let mut acc = buf(997, 99);
            let want: Vec<u8> = acc
                .iter()
                .zip(data)
                .map(|(a, &d)| a ^ tables::gf_mul(c, d))
                .collect();
            set.mul_slice_acc(c, data, &mut acc);
            assert_eq!(acc, want, "{} mul_slice_acc c={c:#04x}", set.name);

            let mut out = vec![0xEEu8; 997];
            set.mul_slice(c, data, &mut out);
            let want: Vec<u8> = data.iter().map(|&d| tables::gf_mul(c, d)).collect();
            assert_eq!(out, want, "{} mul_slice c={c:#04x}", set.name);
        }
    }
}

#[test]
fn crc32_matches_bitwise_reference_at_edge_lengths_and_alignments() {
    for set in supported_sets() {
        for &len in EDGE_LENS {
            for offset in [0usize, 1, 5, 15] {
                let data = buf(len + offset, 31 * len as u64 + 7);
                let data = &data[offset..];
                for state in [0xFFFF_FFFFu32, 0, 0xDEAD_BEEF] {
                    assert_eq!(
                        set.crc32_update(state, data),
                        crc32_bitwise(state, data),
                        "{} crc len={len} off={offset} state={state:#010x}",
                        set.name
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random lengths, offsets and constants: every supported tier
    /// agrees with ground truth on XOR, GF multiply and CRC at once.
    #[test]
    fn all_tiers_agree_with_reference(
        len in 0usize..600,
        offset in 0usize..32,
        c: u8,
        seed: u64,
    ) {
        let a = buf(len + offset, seed);
        let b = buf(len + offset, seed ^ 0x5555_5555_5555_5555);
        let (a, b) = (&a[offset..], &b[offset..]);
        let want_xor: Vec<u8> = a.iter().zip(b).map(|(x, y)| x ^ y).collect();
        let want_mul: Vec<u8> = a
            .iter()
            .zip(b)
            .map(|(x, &d)| x ^ tables::gf_mul(c, d))
            .collect();
        let want_crc = crc32_bitwise(0xFFFF_FFFF, a);
        for set in supported_sets() {
            let mut dst = a.to_vec();
            set.xor_into(&mut dst, b);
            prop_assert_eq!(&dst, &want_xor, "{} xor_into", set.name);

            let mut dst3 = vec![0u8; len];
            set.xor3(&mut dst3, a, b);
            prop_assert_eq!(&dst3, &want_xor, "{} xor3", set.name);

            let mut acc = a.to_vec();
            set.mul_slice_acc(c, b, &mut acc);
            prop_assert_eq!(&acc, &want_mul, "{} mul_slice_acc", set.name);

            prop_assert_eq!(
                set.crc32_update(0xFFFF_FFFF, a),
                want_crc,
                "{} crc32",
                set.name
            );
        }
    }

    /// Streaming CRC splits at arbitrary points must compose: the state
    /// convention is identical across tiers, so a split fed through two
    /// different tiers still matches one-shot ground truth.
    #[test]
    fn crc_state_composes_across_tiers(len in 0usize..600, split in 0usize..600, seed: u64) {
        let data = buf(len, seed);
        let split = split.min(len);
        let want = crc32_bitwise(0xFFFF_FFFF, &data);
        for first in supported_sets() {
            for second in supported_sets() {
                let mid = first.crc32_update(0xFFFF_FFFF, &data[..split]);
                prop_assert_eq!(
                    second.crc32_update(mid, &data[split..]),
                    want,
                    "{} then {}",
                    first.name,
                    second.name
                );
            }
        }
    }
}
