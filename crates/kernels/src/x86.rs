//! x86-64 kernels: SSE2/AVX2 XOR, SSSE3/AVX2 `PSHUFB` split-nibble
//! GF(2^8) multiply, and CRC32 via `PCLMULQDQ` folding.
//!
//! Every function here has a `*_entry` wrapper with a plain `fn` type so
//! it can sit in the dispatch table; the wrappers are only ever installed
//! after [`std::arch::is_x86_feature_detected!`] confirmed the feature,
//! which is what makes the `unsafe` call sound. Tails shorter than one
//! vector fall through to the scalar kernels, so every length and
//! alignment is handled.

use crate::scalar;
use crate::tables::GF_NIBBLE;
use std::arch::x86_64::*;

// ---------------------------------------------------------------- XOR --

/// Dispatch entry: `dst ^= src` with SSE2 (baseline on x86-64).
pub fn xor_into_sse2_entry(dst: &mut [u8], src: &[u8]) {
    // Safety: SSE2 is part of the x86-64 baseline.
    unsafe { xor_into_sse2(dst, src) }
}

/// Dispatch entry: `dst ^= src` with AVX2.
pub fn xor_into_avx2_entry(dst: &mut [u8], src: &[u8]) {
    // Safety: installed only after `is_x86_feature_detected!("avx2")`.
    unsafe { xor_into_avx2(dst, src) }
}

/// Dispatch entry: fused `dst = a ^ b` with SSE2.
pub fn xor3_sse2_entry(dst: &mut [u8], a: &[u8], b: &[u8]) {
    // Safety: SSE2 is part of the x86-64 baseline.
    unsafe { xor3_sse2(dst, a, b) }
}

/// Dispatch entry: fused `dst = a ^ b` with AVX2.
pub fn xor3_avx2_entry(dst: &mut [u8], a: &[u8], b: &[u8]) {
    // Safety: installed only after `is_x86_feature_detected!("avx2")`.
    unsafe { xor3_avx2(dst, a, b) }
}

/// 64 bytes per iteration: four XMM accumulators in flight so the loads,
/// XORs and stores of independent lanes overlap.
#[target_feature(enable = "sse2")]
fn xor_into_sse2(dst: &mut [u8], src: &[u8]) {
    let n = dst.len() & !63;
    let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
    let mut i = 0;
    while i < n {
        // Safety: i + 63 < dst.len() == src.len(); loads/stores unaligned.
        unsafe {
            let p = d.add(i) as *mut __m128i;
            let q = s.add(i) as *const __m128i;
            let x0 = _mm_xor_si128(_mm_loadu_si128(p), _mm_loadu_si128(q));
            let x1 = _mm_xor_si128(_mm_loadu_si128(p.add(1)), _mm_loadu_si128(q.add(1)));
            let x2 = _mm_xor_si128(_mm_loadu_si128(p.add(2)), _mm_loadu_si128(q.add(2)));
            let x3 = _mm_xor_si128(_mm_loadu_si128(p.add(3)), _mm_loadu_si128(q.add(3)));
            _mm_storeu_si128(p, x0);
            _mm_storeu_si128(p.add(1), x1);
            _mm_storeu_si128(p.add(2), x2);
            _mm_storeu_si128(p.add(3), x3);
        }
        i += 64;
    }
    scalar::xor_into(&mut dst[n..], &src[n..]);
}

/// 128 bytes per iteration: four YMM accumulators in flight.
#[target_feature(enable = "avx2")]
fn xor_into_avx2(dst: &mut [u8], src: &[u8]) {
    let n = dst.len() & !127;
    let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
    let mut i = 0;
    while i < n {
        // Safety: i + 127 < dst.len() == src.len(); loads/stores unaligned.
        unsafe {
            let p = d.add(i) as *mut __m256i;
            let q = s.add(i) as *const __m256i;
            let x0 = _mm256_xor_si256(_mm256_loadu_si256(p), _mm256_loadu_si256(q));
            let x1 = _mm256_xor_si256(_mm256_loadu_si256(p.add(1)), _mm256_loadu_si256(q.add(1)));
            let x2 = _mm256_xor_si256(_mm256_loadu_si256(p.add(2)), _mm256_loadu_si256(q.add(2)));
            let x3 = _mm256_xor_si256(_mm256_loadu_si256(p.add(3)), _mm256_loadu_si256(q.add(3)));
            _mm256_storeu_si256(p, x0);
            _mm256_storeu_si256(p.add(1), x1);
            _mm256_storeu_si256(p.add(2), x2);
            _mm256_storeu_si256(p.add(3), x3);
        }
        i += 128;
    }
    // Sub-128 tail: one 32-byte step at a time, then scalar.
    let m = dst.len() & !31;
    while i < m {
        // Safety: i + 31 < dst.len() == src.len().
        unsafe {
            let p = d.add(i) as *mut __m256i;
            let q = s.add(i) as *const __m256i;
            _mm256_storeu_si256(
                p,
                _mm256_xor_si256(_mm256_loadu_si256(p), _mm256_loadu_si256(q)),
            );
        }
        i += 32;
    }
    scalar::xor_into(&mut dst[m..], &src[m..]);
}

#[target_feature(enable = "sse2")]
fn xor3_sse2(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let n = dst.len() & !15;
    let mut i = 0;
    while i < n {
        // Safety: i + 15 < len of all three equal-length slices.
        unsafe {
            let x = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let y = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(x, y));
        }
        i += 16;
    }
    scalar::xor3(&mut dst[n..], &a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
fn xor3_avx2(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let n = dst.len() & !31;
    let mut i = 0;
    while i < n {
        // Safety: i + 31 < len of all three equal-length slices.
        unsafe {
            let x = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(x, y),
            );
        }
        i += 32;
    }
    scalar::xor3(&mut dst[n..], &a[n..], &b[n..]);
}

// --------------------------------------------- GF(2^8) PSHUFB multiply --

/// Dispatch entry: `acc ^= c · data` with SSSE3 `PSHUFB`.
pub fn mul_slice_acc_ssse3_entry(c: u8, data: &[u8], acc: &mut [u8]) {
    // Safety: installed only after `is_x86_feature_detected!("ssse3")`.
    unsafe { mul_slice_ssse3::<true>(c, data, acc) }
}

/// Dispatch entry: `out = c · data` with SSSE3 `PSHUFB`.
pub fn mul_slice_ssse3_entry(c: u8, data: &[u8], out: &mut [u8]) {
    // Safety: installed only after `is_x86_feature_detected!("ssse3")`.
    unsafe { mul_slice_ssse3::<false>(c, data, out) }
}

/// Dispatch entry: `acc ^= c · data` with AVX2 `VPSHUFB`.
pub fn mul_slice_acc_avx2_entry(c: u8, data: &[u8], acc: &mut [u8]) {
    // Safety: installed only after `is_x86_feature_detected!("avx2")`.
    unsafe { mul_slice_avx2::<true>(c, data, acc) }
}

/// Dispatch entry: `out = c · data` with AVX2 `VPSHUFB`.
pub fn mul_slice_avx2_entry(c: u8, data: &[u8], out: &mut [u8]) {
    // Safety: installed only after `is_x86_feature_detected!("avx2")`.
    unsafe { mul_slice_avx2::<false>(c, data, out) }
}

/// Split-nibble multiply, 16 bytes per `PSHUFB` pair: the two 16-entry
/// half-product tables for `c` live in two XMM registers; each data
/// vector is split into nibbles, both halves are looked up in one shuffle
/// each, and the XOR of the halves is the product (GF multiplication
/// distributes over the nibble decomposition).
#[target_feature(enable = "ssse3")]
fn mul_slice_ssse3<const ACC: bool>(c: u8, data: &[u8], out: &mut [u8]) {
    let t = &GF_NIBBLE[c as usize];
    // Safety: GF_NIBBLE rows are 32 bytes: two adjacent 16-byte tables.
    let (lo, hi) = unsafe {
        (
            _mm_loadu_si128(t.as_ptr() as *const __m128i),
            _mm_loadu_si128(t.as_ptr().add(16) as *const __m128i),
        )
    };
    let mask = _mm_set1_epi8(0x0F);
    let n = data.len() & !15;
    let mut i = 0;
    while i < n {
        // Safety: i + 15 < data.len() == out.len().
        unsafe {
            let d = _mm_loadu_si128(data.as_ptr().add(i) as *const __m128i);
            let dl = _mm_and_si128(d, mask);
            let dh = _mm_and_si128(_mm_srli_epi64(d, 4), mask);
            let mut p = _mm_xor_si128(_mm_shuffle_epi8(lo, dl), _mm_shuffle_epi8(hi, dh));
            let o = out.as_mut_ptr().add(i) as *mut __m128i;
            if ACC {
                p = _mm_xor_si128(p, _mm_loadu_si128(o));
            }
            _mm_storeu_si128(o, p);
        }
        i += 16;
    }
    if ACC {
        scalar::mul_slice_acc(c, &data[n..], &mut out[n..]);
    } else {
        scalar::mul_slice(c, &data[n..], &mut out[n..]);
    }
}

/// Split-nibble multiply, 32 bytes per `VPSHUFB` pair (the half-product
/// tables are broadcast into both 128-bit lanes, since `VPSHUFB`
/// shuffles within lanes).
#[target_feature(enable = "avx2")]
fn mul_slice_avx2<const ACC: bool>(c: u8, data: &[u8], out: &mut [u8]) {
    let t = &GF_NIBBLE[c as usize];
    // Safety: GF_NIBBLE rows are 32 bytes: two adjacent 16-byte tables.
    let (lo, hi) = unsafe {
        (
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.as_ptr() as *const __m128i)),
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.as_ptr().add(16) as *const __m128i)),
        )
    };
    let mask = _mm256_set1_epi8(0x0F);
    let n = data.len() & !31;
    let mut i = 0;
    while i < n {
        // Safety: i + 31 < data.len() == out.len().
        unsafe {
            let d = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
            let dl = _mm256_and_si256(d, mask);
            let dh = _mm256_and_si256(_mm256_srli_epi64(d, 4), mask);
            let mut p = _mm256_xor_si256(_mm256_shuffle_epi8(lo, dl), _mm256_shuffle_epi8(hi, dh));
            let o = out.as_mut_ptr().add(i) as *mut __m256i;
            if ACC {
                p = _mm256_xor_si256(p, _mm256_loadu_si256(o));
            }
            _mm256_storeu_si256(o, p);
        }
        i += 32;
    }
    if ACC {
        scalar::mul_slice_acc(c, &data[n..], &mut out[n..]);
    } else {
        scalar::mul_slice(c, &data[n..], &mut out[n..]);
    }
}

// ------------------------------------------------- CRC32 via PCLMULQDQ --

// Folding constants for the reflected IEEE 802.3 polynomial, from
// Intel's "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ"
// (the values used by the Linux kernel's crc32-pclmul and zlib):
// `K(n) = x^n mod P(x)` in the reflected bit order the algorithm uses.
const K1: i64 = 0x0001_5444_2bd4; // x^(4·128+32) mod P — fold 512 bits
const K2: i64 = 0x0001_c6e4_1596; // x^(4·128-32) mod P
const K3: i64 = 0x0001_7519_97d0; // x^(128+32) mod P — fold 128 bits
const K4: i64 = 0x0000_ccaa_009e; // x^(128-32) mod P
const K5: i64 = 0x0001_63cd_6124; // x^64 mod P — fold 64 → 32 bits
const P_X: i64 = 0x0001_DB71_0641; // P(x), reflected, for Barrett reduction
const U_PRIME: i64 = 0x0001_F701_1641; // floor(x^64 / P(x)), reflected

/// Dispatch entry: raw-state CRC32 update via `PCLMULQDQ` folding.
///
/// Buffers shorter than 64 bytes (and sub-16-byte tails) go through the
/// scalar slice-by-16 kernel; the carry-less path folds four XMM lanes of
/// input down to one, then Barrett-reduces to the 32-bit state.
pub fn crc32_update_pclmul_entry(state: u32, data: &[u8]) -> u32 {
    if data.len() < 64 {
        return scalar::crc32_update(state, data);
    }
    let split = data.len() & !15;
    // Safety: installed only after detection of pclmulqdq + sse4.1.
    let folded = unsafe { crc32_pclmul(state, &data[..split]) };
    scalar::crc32_update(folded, &data[split..])
}

/// `data.len()` must be a multiple of 16 and at least 64.
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
fn crc32_pclmul(state: u32, data: &[u8]) -> u32 {
    debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
    // Safety throughout: every 16-byte load below stays inside `data`,
    // maintained by the chunk arithmetic.
    let mut p = data.as_ptr() as *const __m128i;
    let mut remaining = data.len();
    unsafe {
        let (mut x3, mut x2, mut x1, mut x0) = (
            _mm_loadu_si128(p),
            _mm_loadu_si128(p.add(1)),
            _mm_loadu_si128(p.add(2)),
            _mm_loadu_si128(p.add(3)),
        );
        p = p.add(4);
        remaining -= 64;
        // The running state enters as the low dword of the first lane.
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));

        // Fold 64 bytes at a time: each 128-bit lane multiplied by
        // x^(4·128±32) lands exactly on the next block's lane.
        let k1k2 = _mm_set_epi64x(K2, K1);
        while remaining >= 64 {
            x3 = fold16(x3, _mm_loadu_si128(p), k1k2);
            x2 = fold16(x2, _mm_loadu_si128(p.add(1)), k1k2);
            x1 = fold16(x1, _mm_loadu_si128(p.add(2)), k1k2);
            x0 = fold16(x0, _mm_loadu_si128(p.add(3)), k1k2);
            p = p.add(4);
            remaining -= 64;
        }

        // Fold the four lanes into one, then any remaining 16-byte blocks.
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while remaining >= 16 {
            x = fold16(x, _mm_loadu_si128(p), k3k4);
            p = p.add(1);
            remaining -= 16;
        }

        // Reduce 128 → 64 bits, 64 → 32 bits, then Barrett-reduce.
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t2 = _mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00);
        _mm_extract_epi32(_mm_xor_si128(x, t2), 1) as u32
    }
}

/// One folding step: `a · (K_hi, K_lo) ⊕ b` over GF(2)[x].
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
    let lo = _mm_clmulepi64_si128(a, keys, 0x00);
    let hi = _mm_clmulepi64_si128(a, keys, 0x11);
    _mm_xor_si128(b, _mm_xor_si128(lo, hi))
}
