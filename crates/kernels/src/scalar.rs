//! Portable scalar reference kernels.
//!
//! These are the byte-for-byte ground truth the SIMD paths are pinned
//! against (and the bodies behind the `force-scalar` feature and
//! `AE_KERNEL=scalar`). They are not naive: XOR moves 32 bytes per step
//! through `u64` lanes the compiler autovectorizes, the GF(2^8) multiply
//! is a branch-free two-level nibble lookup (no per-byte `d != 0`
//! mispredict, no log/exp dependency chain), and CRC32 is slice-by-16.

use crate::tables::{CRC_TABLES, GF_NIBBLE};

/// `dst[i] ^= src[i]`, 32 bytes (four `u64` lanes) per step with an
/// 8-byte then byte-wise tail. Lengths must match (checked by callers).
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    let mut dst_wide = dst.chunks_exact_mut(32);
    let mut src_wide = src.chunks_exact(32);
    for (d, s) in dst_wide.by_ref().zip(src_wide.by_ref()) {
        for lane in 0..4 {
            let at = lane * 8;
            let x = u64::from_ne_bytes(d[at..at + 8].try_into().expect("lane of 8"))
                ^ u64::from_ne_bytes(s[at..at + 8].try_into().expect("lane of 8"));
            d[at..at + 8].copy_from_slice(&x.to_ne_bytes());
        }
    }
    let mut dst_chunks = dst_wide.into_remainder().chunks_exact_mut(8);
    let mut src_chunks = src_wide.remainder().chunks_exact(8);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        let x = u64::from_ne_bytes(d.try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= *s;
    }
}

/// `dst[i] = a[i] ^ b[i]` in one fused pass (no copy-then-xor).
pub fn xor3(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let mut out = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for ((d, x), y) in out.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        let v = u64::from_ne_bytes(x.try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(y.try_into().expect("chunk of 8"));
        d.copy_from_slice(&v.to_ne_bytes());
    }
    for ((d, x), y) in out
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d = *x ^ *y;
    }
}

/// `acc[i] ^= c · data[i]` over GF(2^8) via the split-nibble tables:
/// two 16-entry lookups per byte, no branch on the data byte.
pub fn mul_slice_acc(c: u8, data: &[u8], acc: &mut [u8]) {
    let t = &GF_NIBBLE[c as usize];
    let (lo, hi) = t.split_at(16);
    for (a, &d) in acc.iter_mut().zip(data) {
        *a ^= lo[(d & 0x0F) as usize] ^ hi[(d >> 4) as usize];
    }
}

/// `out[i] = c · data[i]` over GF(2^8) (overwriting variant).
pub fn mul_slice(c: u8, data: &[u8], out: &mut [u8]) {
    let t = &GF_NIBBLE[c as usize];
    let (lo, hi) = t.split_at(16);
    for (o, &d) in out.iter_mut().zip(data) {
        *o = lo[(d & 0x0F) as usize] ^ hi[(d >> 4) as usize];
    }
}

/// Advances a raw (pre-inversion) CRC32 state over `data`, sixteen bytes
/// per step through the slicing tables with a byte-wise tail.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = state;
    let mut chunks = data.chunks_exact(16);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4-byte word")) ^ c;
        let b = |i: usize| chunk[i] as usize;
        c = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][(lo >> 24) as usize]
            ^ t[11][b(4)]
            ^ t[10][b(5)]
            ^ t[9][b(6)]
            ^ t[8][b(7)]
            ^ t[7][b(8)]
            ^ t[6][b(9)]
            ^ t[5][b(10)]
            ^ t[4][b(11)]
            ^ t[3][b(12)]
            ^ t[2][b(13)]
            ^ t[1][b(14)]
            ^ t[0][b(15)];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::gf_mul;

    #[test]
    fn crc_slice_by_16_matches_known_vectors() {
        // state convention: init 0xFFFF_FFFF, final xor 0xFFFF_FFFF.
        let crc = |data: &[u8]| crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF;
        assert_eq!(crc(b""), 0x0000_0000);
        assert_eq!(crc(b"a"), 0xE8B7_BE43);
        assert_eq!(crc(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn mul_slice_acc_is_branch_free_table_product() {
        let data: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0x8E, 0xFF] {
            let mut acc = vec![0x5Au8; 256];
            mul_slice_acc(c, &data, &mut acc);
            for (i, &a) in acc.iter().enumerate() {
                assert_eq!(a, 0x5A ^ gf_mul(c, data[i]), "c={c:#04x} i={i}");
            }
            let mut out = vec![0u8; 256];
            mul_slice(c, &data, &mut out);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, gf_mul(c, data[i]), "c={c:#04x} i={i}");
            }
        }
    }

    #[test]
    fn xor3_fuses_copy_and_xor() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 100] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7 + 1) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let mut dst = vec![0u8; len];
            xor3(&mut dst, &a, &b);
            let want: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(dst, want, "len={len}");
        }
    }
}
