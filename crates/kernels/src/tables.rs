//! Compile-time lookup tables shared by the scalar and SIMD kernels.
//!
//! Everything here is produced by `const fn` evaluation from first
//! principles — the GF(2^8) tables by carry-less (Russian peasant)
//! multiplication modulo the primitive polynomial `0x11D`, the CRC32
//! tables from the reflected IEEE 802.3 polynomial — so the tables carry
//! no runtime initialization cost, no locks, and cannot drift from the
//! definitions they are derived from.

/// The GF(2^8) primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1`,
/// including the `x^8` term (the conventional Reed-Solomon choice).
pub const GF_POLY: u16 = 0x11D;

/// The reflected IEEE 802.3 CRC32 polynomial.
pub const CRC_POLY: u32 = 0xEDB8_8320;

/// Carry-less multiplication in GF(2^8) modulo [`GF_POLY`].
///
/// Shift-and-xor (Russian peasant) product: branchy and slow, but
/// obviously correct — it is the ground truth every table below is built
/// from, and the reference the parity proptests multiply against.
pub const fn gf_mul(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut p: u16 = 0;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= GF_POLY;
        }
        b >>= 1;
    }
    p as u8
}

/// Split-nibble half-product tables for every GF(2^8) constant.
///
/// `GF_NIBBLE[c]` holds 32 bytes: entries `0..16` are `c · i` for the low
/// nibble values `i`, entries `16..32` are `c · (i << 4)` for the high
/// nibble values. Because multiplication distributes over XOR,
/// `c · d = lo[d & 0xF] ^ hi[d >> 4]` — two 16-entry lookups per byte with
/// no branch, and exactly the layout `PSHUFB`/`TBL` consume 16 (or 32)
/// bytes at a time. 8 KiB total, resident in L1 after first touch.
pub static GF_NIBBLE: [[u8; 32]; 256] = build_gf_nibble();

const fn build_gf_nibble() -> [[u8; 32]; 256] {
    let mut t = [[0u8; 32]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut i = 0usize;
        while i < 16 {
            t[c][i] = gf_mul(c as u8, i as u8);
            t[c][16 + i] = gf_mul(c as u8, (i << 4) as u8);
            i += 1;
        }
        c += 1;
    }
    t
}

/// Slice-by-16 CRC32 tables: `CRC_TABLES[k][b]` is the CRC of byte `b`
/// followed by `k` zero bytes, so sixteen lookups advance the state by
/// sixteen input bytes at once (Intel's slicing construction).
/// `CRC_TABLES[0]` is the classic byte-at-a-time table used for tails.
pub static CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ CRC_POLY
            } else {
                c >> 1
            };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_mul_agrees_with_known_products() {
        // Hand-checked against the 0x11D tables of Plank's tutorial.
        assert_eq!(gf_mul(2, 2), 4);
        assert_eq!(gf_mul(0x80, 2), 0x1D);
        assert_eq!(gf_mul(0xFF, 0xFF), 0xE2);
        for x in 0..=255u8 {
            assert_eq!(gf_mul(x, 1), x);
            assert_eq!(gf_mul(1, x), x);
            assert_eq!(gf_mul(x, 0), 0);
        }
    }

    #[test]
    fn nibble_tables_reassemble_every_product() {
        for c in 0..=255u8 {
            let t = &GF_NIBBLE[c as usize];
            for d in 0..=255u8 {
                let via_nibbles = t[(d & 0x0F) as usize] ^ t[16 + (d >> 4) as usize];
                assert_eq!(via_nibbles, gf_mul(c, d), "c={c:#04x} d={d:#04x}");
            }
        }
    }

    #[test]
    fn crc_tables_chain_correctly() {
        // T[k][b] must equal the CRC state after feeding b then k zeros.
        for (k, table) in CRC_TABLES.iter().enumerate() {
            for b in [0u8, 1, 0x55, 0xAA, 0xFF] {
                let mut c = b as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        (c >> 1) ^ CRC_POLY
                    } else {
                        c >> 1
                    };
                }
                for _ in 0..k {
                    c = CRC_TABLES[0][(c & 0xFF) as usize] ^ (c >> 8);
                }
                assert_eq!(table[b as usize], c, "k={k} b={b:#04x}");
            }
        }
    }
}
