//! AArch64 kernels: NEON XOR, `TBL` split-nibble GF(2^8) multiply, and
//! CRC32 via the ARMv8 CRC32 instructions (which implement exactly the
//! reflected IEEE 802.3 polynomial this workspace uses).
//!
//! Mirrors the x86 module: `*_entry` wrappers with plain `fn` types for
//! the dispatch table, installed only after
//! [`std::arch::is_aarch64_feature_detected!`] confirmed the feature;
//! tails fall through to the scalar kernels.

use crate::scalar;
use crate::tables::GF_NIBBLE;
use std::arch::aarch64::*;

// ---------------------------------------------------------------- XOR --

/// Dispatch entry: `dst ^= src` with NEON.
pub fn xor_into_neon_entry(dst: &mut [u8], src: &[u8]) {
    // Safety: installed only after `is_aarch64_feature_detected!("neon")`.
    unsafe { xor_into_neon(dst, src) }
}

/// Dispatch entry: fused `dst = a ^ b` with NEON.
pub fn xor3_neon_entry(dst: &mut [u8], a: &[u8], b: &[u8]) {
    // Safety: installed only after `is_aarch64_feature_detected!("neon")`.
    unsafe { xor3_neon(dst, a, b) }
}

/// 64 bytes per iteration: four Q-register accumulators in flight.
#[target_feature(enable = "neon")]
fn xor_into_neon(dst: &mut [u8], src: &[u8]) {
    let n = dst.len() & !63;
    let mut i = 0;
    while i < n {
        // Safety: i + 63 < dst.len() == src.len().
        unsafe {
            let d = dst.as_mut_ptr().add(i);
            let s = src.as_ptr().add(i);
            let x0 = veorq_u8(vld1q_u8(d), vld1q_u8(s));
            let x1 = veorq_u8(vld1q_u8(d.add(16)), vld1q_u8(s.add(16)));
            let x2 = veorq_u8(vld1q_u8(d.add(32)), vld1q_u8(s.add(32)));
            let x3 = veorq_u8(vld1q_u8(d.add(48)), vld1q_u8(s.add(48)));
            vst1q_u8(d, x0);
            vst1q_u8(d.add(16), x1);
            vst1q_u8(d.add(32), x2);
            vst1q_u8(d.add(48), x3);
        }
        i += 64;
    }
    scalar::xor_into(&mut dst[n..], &src[n..]);
}

#[target_feature(enable = "neon")]
fn xor3_neon(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let n = dst.len() & !15;
    let mut i = 0;
    while i < n {
        // Safety: i + 15 < len of all three equal-length slices.
        unsafe {
            let x = vld1q_u8(a.as_ptr().add(i));
            let y = vld1q_u8(b.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(x, y));
        }
        i += 16;
    }
    scalar::xor3(&mut dst[n..], &a[n..], &b[n..]);
}

// ------------------------------------------------ GF(2^8) TBL multiply --

/// Dispatch entry: `acc ^= c · data` with NEON `TBL`.
pub fn mul_slice_acc_neon_entry(c: u8, data: &[u8], acc: &mut [u8]) {
    // Safety: installed only after `is_aarch64_feature_detected!("neon")`.
    unsafe { mul_slice_neon::<true>(c, data, acc) }
}

/// Dispatch entry: `out = c · data` with NEON `TBL`.
pub fn mul_slice_neon_entry(c: u8, data: &[u8], out: &mut [u8]) {
    // Safety: installed only after `is_aarch64_feature_detected!("neon")`.
    unsafe { mul_slice_neon::<false>(c, data, out) }
}

/// Split-nibble multiply, 16 bytes per `TBL` pair — the NEON analogue of
/// `PSHUFB`: both 16-entry half-product tables live in Q registers, each
/// data vector is looked up nibble-wise and the halves XOR to the product.
#[target_feature(enable = "neon")]
fn mul_slice_neon<const ACC: bool>(c: u8, data: &[u8], out: &mut [u8]) {
    let t = &GF_NIBBLE[c as usize];
    // Safety: GF_NIBBLE rows are 32 bytes: two adjacent 16-byte tables.
    let (lo, hi) = unsafe { (vld1q_u8(t.as_ptr()), vld1q_u8(t.as_ptr().add(16))) };
    let mask = vdupq_n_u8(0x0F);
    let n = data.len() & !15;
    let mut i = 0;
    while i < n {
        // Safety: i + 15 < data.len() == out.len().
        unsafe {
            let d = vld1q_u8(data.as_ptr().add(i));
            let dl = vandq_u8(d, mask);
            let dh = vshrq_n_u8(d, 4);
            let mut p = veorq_u8(vqtbl1q_u8(lo, dl), vqtbl1q_u8(hi, dh));
            let o = out.as_mut_ptr().add(i);
            if ACC {
                p = veorq_u8(p, vld1q_u8(o));
            }
            vst1q_u8(o, p);
        }
        i += 16;
    }
    if ACC {
        scalar::mul_slice_acc(c, &data[n..], &mut out[n..]);
    } else {
        scalar::mul_slice(c, &data[n..], &mut out[n..]);
    }
}

// ------------------------------------------- CRC32 via ARMv8 crc32x/b --

/// Dispatch entry: raw-state CRC32 update via the ARMv8 CRC32
/// instructions (`crc32x`/`crc32b` — the IEEE variant, not `crc32c*`).
pub fn crc32_update_armv8_entry(state: u32, data: &[u8]) -> u32 {
    // Safety: installed only after `is_aarch64_feature_detected!("crc")`.
    unsafe { crc32_armv8(state, data) }
}

#[target_feature(enable = "crc")]
fn crc32_armv8(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        c = __crc32d(c, u64::from_le_bytes(chunk.try_into().expect("chunk of 8")));
    }
    for &b in chunks.remainder() {
        c = __crc32b(c, b);
    }
    c
}
