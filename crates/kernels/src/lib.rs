//! Runtime-dispatched data-path kernels: XOR, GF(2^8) multiply, CRC32.
//!
//! Every byte this workspace stores or repairs flows through three
//! kernels — the XOR that *is* the arithmetic of alpha entanglement, the
//! GF(2^8) constant-multiply-accumulate at the heart of Reed-Solomon
//! encode/decode, and the CRC32 that guards every block and every
//! metadata journal record. This crate owns all three, in two forms:
//!
//! * **Scalar reference kernels** ([`scalar`]) — portable, branch-free,
//!   and the byte-for-byte ground truth. XOR moves 32 bytes per step
//!   through `u64` lanes, the GF multiply is a two-level split-nibble
//!   table lookup (no per-byte `d != 0` branch), CRC32 is slice-by-16.
//! * **Hardware kernels** — explicit SSE2/AVX2 XOR and SSSE3/AVX2
//!   `PSHUFB` split-nibble GF multiply with `PCLMULQDQ`-folded CRC32 on
//!   x86-64; NEON XOR, `TBL` GF multiply and the ARMv8 CRC32
//!   instructions on AArch64.
//!
//! # Dispatch contract
//!
//! CPU features are detected **once**, on first use, via
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!`; the
//! chosen [`Kernels`] set of plain function pointers is cached for the
//! life of the process ([`active`]). Selection override order is
//! **environment > cargo feature > auto-detection**:
//!
//! 1. `AE_KERNEL=scalar|sse2|avx2|neon|auto` picks a tier at runtime.
//!    A tier the host CPU does not support (or an unknown value) falls
//!    back to `auto`.
//! 2. The `force-scalar` cargo feature pins the default to the scalar
//!    reference kernels (CI runs the whole test suite under it).
//! 3. Otherwise the best tier the CPU supports wins.
//!
//! Every vectorized kernel is pinned byte-identical to the scalar
//! reference by exhaustive proptests (all 256 GF constants, lengths
//! straddling every vector width, unaligned sub-slice views); the
//! `force-scalar` CI leg plus a dispatched-vs-scalar parity step keep
//! that contract enforced on whatever ISA CI runs.

#![warn(missing_docs)]

pub mod scalar;
pub mod tables;

#[cfg(target_arch = "aarch64")]
mod aarch64;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// A resolved set of kernel function pointers plus reporting names.
///
/// Obtain the process-wide set with [`active`] (or use the free
/// functions, which do exactly that), or enumerate every set the host
/// supports with [`supported_sets`] for parity testing and benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    /// Tier name: `scalar`, `sse2`, `avx2` or `neon`.
    pub name: &'static str,
    /// Name of the XOR implementation in this set.
    pub xor_name: &'static str,
    /// Name of the GF(2^8) multiply implementation in this set.
    pub mul_name: &'static str,
    /// Name of the CRC32 implementation in this set.
    pub crc_name: &'static str,
    xor_into: fn(&mut [u8], &[u8]),
    xor3: fn(&mut [u8], &[u8], &[u8]),
    mul_slice_acc: fn(u8, &[u8], &mut [u8]),
    mul_slice: fn(u8, &[u8], &mut [u8]),
    crc32_update: fn(u32, &[u8]) -> u32,
}

impl Kernels {
    /// `dst[i] ^= src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(
            dst.len(),
            src.len(),
            "xor_into requires equal-length slices"
        );
        (self.xor_into)(dst, src);
    }

    /// Fused `dst[i] = a[i] ^ b[i]` — one pass, no copy-then-xor.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn xor3(&self, dst: &mut [u8], a: &[u8], b: &[u8]) {
        assert_eq!(dst.len(), a.len(), "xor3 requires equal-length slices");
        assert_eq!(dst.len(), b.len(), "xor3 requires equal-length slices");
        (self.xor3)(dst, a, b);
    }

    /// `acc[i] ^= c · data[i]` over GF(2^8) mod `0x11D`.
    ///
    /// `c = 0` is a no-op and `c = 1` degenerates to [`Self::xor_into`];
    /// both short-circuit before the table path.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_slice_acc(&self, c: u8, data: &[u8], acc: &mut [u8]) {
        assert_eq!(
            data.len(),
            acc.len(),
            "mul_slice_acc requires equal-length slices"
        );
        match c {
            0 => {}
            1 => (self.xor_into)(acc, data),
            _ => (self.mul_slice_acc)(c, data, acc),
        }
    }

    /// `out[i] = c · data[i]` over GF(2^8) mod `0x11D` (overwriting).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_slice(&self, c: u8, data: &[u8], out: &mut [u8]) {
        assert_eq!(
            data.len(),
            out.len(),
            "mul_slice requires equal-length slices"
        );
        match c {
            0 => out.fill(0),
            1 => out.copy_from_slice(data),
            _ => (self.mul_slice)(c, data, out),
        }
    }

    /// Advances a raw CRC32 state (reflected IEEE 802.3, pre-inversion
    /// form: initial state `0xFFFF_FFFF`, finalize by XOR with
    /// `0xFFFF_FFFF`) over `data`.
    pub fn crc32_update(&self, state: u32, data: &[u8]) -> u32 {
        (self.crc32_update)(state, data)
    }

    /// One-line description, e.g. `avx2 (xor=avx2 gf=avx2 crc=pclmul)`.
    pub fn describe(&self) -> String {
        format!(
            "{} (xor={} gf={} crc={})",
            self.name, self.xor_name, self.mul_name, self.crc_name
        )
    }
}

const SCALAR_SET: Kernels = Kernels {
    name: "scalar",
    xor_name: "scalar",
    mul_name: "scalar-nibble",
    crc_name: "slice16",
    xor_into: scalar::xor_into,
    xor3: scalar::xor3,
    mul_slice_acc: scalar::mul_slice_acc,
    mul_slice: scalar::mul_slice,
    crc32_update: scalar::crc32_update,
};

#[cfg(target_arch = "x86_64")]
fn sse2_set() -> Kernels {
    // SSE2 is the x86-64 baseline; PSHUFB needs SSSE3 and the CRC
    // folding needs PCLMULQDQ + SSE4.1, so those two slots are filled by
    // detection and reported truthfully.
    let mut k = Kernels {
        name: "sse2",
        xor_name: "sse2",
        xor_into: x86::xor_into_sse2_entry,
        xor3: x86::xor3_sse2_entry,
        ..SCALAR_SET
    };
    if std::arch::is_x86_feature_detected!("ssse3") {
        k.mul_name = "ssse3-pshufb";
        k.mul_slice_acc = x86::mul_slice_acc_ssse3_entry;
        k.mul_slice = x86::mul_slice_ssse3_entry;
    }
    if std::arch::is_x86_feature_detected!("pclmulqdq")
        && std::arch::is_x86_feature_detected!("sse4.1")
    {
        k.crc_name = "pclmul";
        k.crc32_update = x86::crc32_update_pclmul_entry;
    }
    k
}

#[cfg(target_arch = "x86_64")]
fn avx2_set() -> Option<Kernels> {
    if !std::arch::is_x86_feature_detected!("avx2") {
        return None;
    }
    let mut k = sse2_set();
    k.name = "avx2";
    k.xor_name = "avx2";
    k.xor_into = x86::xor_into_avx2_entry;
    k.xor3 = x86::xor3_avx2_entry;
    k.mul_name = "avx2-pshufb";
    k.mul_slice_acc = x86::mul_slice_acc_avx2_entry;
    k.mul_slice = x86::mul_slice_avx2_entry;
    Some(k)
}

#[cfg(target_arch = "aarch64")]
fn neon_set() -> Option<Kernels> {
    if !std::arch::is_aarch64_feature_detected!("neon") {
        return None;
    }
    let mut k = Kernels {
        name: "neon",
        xor_name: "neon",
        mul_name: "neon-tbl",
        xor_into: aarch64::xor_into_neon_entry,
        xor3: aarch64::xor3_neon_entry,
        mul_slice_acc: aarch64::mul_slice_acc_neon_entry,
        mul_slice: aarch64::mul_slice_neon_entry,
        ..SCALAR_SET
    };
    if std::arch::is_aarch64_feature_detected!("crc") {
        k.crc_name = "armv8-crc32";
        k.crc32_update = aarch64::crc32_update_armv8_entry;
    }
    Some(k)
}

/// Every kernel set the host CPU supports, scalar first.
///
/// Used by the parity proptests (every vectorized tier is pinned against
/// scalar on whatever ISA the host provides) and by the kernel
/// benchmarks.
pub fn supported_sets() -> Vec<Kernels> {
    #[allow(unused_mut)]
    let mut sets = vec![SCALAR_SET];
    #[cfg(target_arch = "x86_64")]
    {
        sets.push(sse2_set());
        sets.extend(avx2_set());
    }
    #[cfg(target_arch = "aarch64")]
    {
        sets.extend(neon_set());
    }
    sets
}

fn auto_set() -> Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(k) = avx2_set() {
            return k;
        }
        return sse2_set();
    }
    #[cfg(target_arch = "aarch64")]
    {
        if let Some(k) = neon_set() {
            return k;
        }
    }
    #[allow(unreachable_code)]
    SCALAR_SET
}

/// Resolves a tier name; `None` for unknown names or unsupported tiers.
fn by_name(name: &str) -> Option<Kernels> {
    match name {
        "scalar" => Some(SCALAR_SET),
        "auto" => Some(auto_set()),
        #[cfg(target_arch = "x86_64")]
        "sse2" => Some(sse2_set()),
        #[cfg(target_arch = "x86_64")]
        "avx2" => avx2_set(),
        #[cfg(target_arch = "aarch64")]
        "neon" => neon_set(),
        _ => None,
    }
}

fn select() -> Kernels {
    if let Ok(requested) = std::env::var("AE_KERNEL") {
        if !requested.is_empty() {
            // Env wins over the feature; an unsupported or unknown tier
            // falls back to auto-detection (documented contract).
            return by_name(&requested).unwrap_or_else(auto_set);
        }
    }
    if cfg!(feature = "force-scalar") {
        return SCALAR_SET;
    }
    auto_set()
}

/// The process-wide kernel set: detected once, cached forever.
pub fn active() -> &'static Kernels {
    static ACTIVE: OnceLock<Kernels> = OnceLock::new();
    ACTIVE.get_or_init(select)
}

/// Name of the active tier (`scalar`, `sse2`, `avx2` or `neon`).
pub fn kernel_name() -> &'static str {
    active().name
}

/// `dst[i] ^= src[i]` through the active kernel set.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    active().xor_into(dst, src);
}

/// Fused `dst[i] = a[i] ^ b[i]` through the active kernel set.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor3(dst: &mut [u8], a: &[u8], b: &[u8]) {
    active().xor3(dst, a, b);
}

/// `acc[i] ^= c · data[i]` over GF(2^8) through the active kernel set.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice_acc(c: u8, data: &[u8], acc: &mut [u8]) {
    active().mul_slice_acc(c, data, acc);
}

/// `out[i] = c · data[i]` over GF(2^8) through the active kernel set.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice(c: u8, data: &[u8], out: &mut [u8]) {
    active().mul_slice(c, data, out);
}

/// Advances a raw CRC32 state through the active kernel set (see
/// [`Kernels::crc32_update`] for the state convention).
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    active().crc32_update(state, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_set_is_always_supported() {
        let sets = supported_sets();
        assert_eq!(sets[0].name, "scalar");
        assert!(by_name("scalar").is_some());
        assert!(by_name("auto").is_some());
        assert!(by_name("riscv-vector").is_none());
    }

    #[test]
    fn active_is_stable_across_calls() {
        let a = active().describe();
        let b = active().describe();
        assert_eq!(a, b);
    }

    #[test]
    fn wrappers_agree_with_active_set() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut a = vec![0x11u8; 100];
        let mut b = vec![0x11u8; 100];
        xor_into(&mut a, &data);
        active().xor_into(&mut b, &data);
        assert_eq!(a, b);
        assert_eq!(
            crc32_update(0xFFFF_FFFF, &data),
            active().crc32_update(0xFFFF_FFFF, &data)
        );
    }

    #[test]
    fn mul_fast_paths_match_tables() {
        let data: Vec<u8> = (0..=255u8).collect();
        for set in supported_sets() {
            for c in [0u8, 1] {
                let mut acc = vec![0xA5u8; 256];
                set.mul_slice_acc(c, &data, &mut acc);
                let mut want = vec![0xA5u8; 256];
                scalar::mul_slice_acc(c, &data, &mut want);
                assert_eq!(acc, want, "{} c={c}", set.name);

                let mut out = vec![0x77u8; 256];
                set.mul_slice(c, &data, &mut out);
                let mut wout = vec![0u8; 256];
                scalar::mul_slice(c, &data, &mut wout);
                assert_eq!(out, wout, "{} c={c}", set.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_into_rejects_mismatched_lengths() {
        xor_into(&mut [0u8; 4], &[0u8; 5]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor3_rejects_mismatched_lengths() {
        xor3(&mut [0u8; 4], &[0u8; 4], &[0u8; 5]);
    }
}
