//! Helpers for encoding and decoding encoder-frontier snapshots.
//!
//! Every scheme defines its own snapshot payload (see
//! [`crate::RedundancyScheme::frontier_snapshot`]); this module provides
//! the shared scaffolding — a leading version byte, little-endian integer
//! fields, and typed [`AeError::CorruptFrontier`] errors when the bytes do
//! not parse — so all implementations fail the same way on truncated or
//! foreign snapshots instead of panicking.

use crate::error::AeError;

/// Builds a frontier snapshot: a version byte followed by little-endian
/// fields.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot with the scheme's format `version` byte.
    pub fn new(version: u8) -> Self {
        SnapshotWriter { buf: vec![version] }
    }

    /// Appends a `u8` field.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32` field.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64` field.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a variable-length byte field, `u32`-length-prefixed — the
    /// shape nested payloads take (an embedded snapshot inside a
    /// checkpoint record, a pending block's contents).
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` bytes.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        let len = u32::try_from(v.len()).expect("snapshot field over u32::MAX bytes");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// The finished snapshot bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over frontier-snapshot bytes with typed
/// [`AeError::CorruptFrontier`] errors.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    scheme: &'a str,
}

impl<'a> SnapshotReader<'a> {
    /// Opens `snapshot` for `scheme` (used in error messages), verifying
    /// the leading version byte equals `version`.
    ///
    /// # Errors
    ///
    /// [`AeError::CorruptFrontier`] when the snapshot is empty or carries
    /// a different version.
    pub fn new(snapshot: &'a [u8], version: u8, scheme: &'a str) -> Result<Self, AeError> {
        match snapshot.first() {
            Some(&v) if v == version => Ok(SnapshotReader {
                buf: snapshot,
                pos: 1,
                scheme,
            }),
            Some(&v) => Err(AeError::CorruptFrontier {
                detail: format!("{scheme}: snapshot version {v}, expected {version}"),
            }),
            None => Err(AeError::CorruptFrontier {
                detail: format!("{scheme}: empty snapshot"),
            }),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], AeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let bytes = &self.buf[self.pos..end];
                self.pos = end;
                Ok(bytes)
            }
            None => Err(AeError::CorruptFrontier {
                detail: format!(
                    "{}: snapshot truncated at byte {} (wanted {} more of {})",
                    self.scheme,
                    self.pos,
                    n,
                    self.buf.len()
                ),
            }),
        }
    }

    /// Reads a `u8` field.
    ///
    /// # Errors
    ///
    /// [`AeError::CorruptFrontier`] when the snapshot is exhausted.
    pub fn u8(&mut self) -> Result<u8, AeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32` field.
    ///
    /// # Errors
    ///
    /// [`AeError::CorruptFrontier`] when the snapshot is exhausted.
    pub fn u32(&mut self) -> Result<u32, AeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64` field.
    ///
    /// # Errors
    ///
    /// [`AeError::CorruptFrontier`] when the snapshot is exhausted.
    pub fn u64(&mut self) -> Result<u64, AeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u32`-length-prefixed byte field written by
    /// [`SnapshotWriter::bytes`].
    ///
    /// # Errors
    ///
    /// [`AeError::CorruptFrontier`] when the snapshot is exhausted or the
    /// prefix names more bytes than remain.
    pub fn bytes(&mut self) -> Result<&'a [u8], AeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Asserts every byte was consumed — trailing garbage means the
    /// snapshot is not what the scheme wrote.
    ///
    /// # Errors
    ///
    /// [`AeError::CorruptFrontier`] when bytes remain.
    pub fn finish(self) -> Result<(), AeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(AeError::CorruptFrontier {
                detail: format!(
                    "{}: {} trailing snapshot byte(s)",
                    self.scheme,
                    self.buf.len() - self.pos
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let snap = SnapshotWriter::new(3).u64(42).u32(7).u8(1).finish();
        let mut r = SnapshotReader::new(&snap, 3, "test").unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u8().unwrap(), 1);
        r.finish().unwrap();
    }

    #[test]
    fn version_and_truncation_are_typed() {
        let snap = SnapshotWriter::new(3).u64(42).finish();
        assert!(matches!(
            SnapshotReader::new(&snap, 4, "test"),
            Err(AeError::CorruptFrontier { .. })
        ));
        assert!(matches!(
            SnapshotReader::new(&[], 1, "test"),
            Err(AeError::CorruptFrontier { .. })
        ));
        let mut r = SnapshotReader::new(&snap[..5], 3, "test").unwrap();
        let err = r.u64().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn byte_fields_roundtrip_and_fail_typed() {
        let snap = SnapshotWriter::new(2)
            .bytes(b"nested payload")
            .bytes(b"")
            .u8(9)
            .finish();
        let mut r = SnapshotReader::new(&snap, 2, "test").unwrap();
        assert_eq!(r.bytes().unwrap(), b"nested payload");
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.u8().unwrap(), 9);
        r.finish().unwrap();
        // A length prefix that overruns the buffer is truncation, typed.
        let mut lying = SnapshotWriter::new(2).u32(1000).finish();
        lying.extend_from_slice(b"short");
        let mut r = SnapshotReader::new(&lying, 2, "test").unwrap();
        let err = r.bytes().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let snap = SnapshotWriter::new(1).u8(0).u8(0).finish();
        let mut r = SnapshotReader::new(&snap, 1, "test").unwrap();
        r.u8().unwrap();
        let err = r.finish().unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
