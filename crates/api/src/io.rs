//! Where blocks live: the unified [`BlockSource`] / [`BlockSink`] /
//! [`BlockRepo`] backend family.
//!
//! Encoders write into a sink; decoders read from a source; round-based
//! repair needs both ([`BlockRepo`]). There is exactly **one** backend
//! abstraction: the in-memory [`BlockMap`], every `ae_store` backend (the
//! plain, distributed, tiered and fault-injecting stores) and ad-hoc
//! adapters (tier routers, overlays, counting sinks) all implement these
//! same traits — so the same encode/repair/archive code serves a unit
//! test, a multi-backend deployment and a simulation harness without an
//! adapter layer in between.
//!
//! # The one mutability story
//!
//! Every method takes `&self`. Storage backends are shared by nature —
//! repair planners read them from several threads, archives and brokers
//! write through `Arc` handles — so the traits commit to interior
//! mutability once, instead of `&mut` signatures that concurrent backends
//! would quietly ignore. [`BlockSource`] is additionally `Sync`, because
//! round-based repair plans each round against an immutable snapshot of
//! the source from several planner threads at once (see
//! [`crate::RedundancyScheme::repair_missing`]).
//!
//! The plain `HashMap` therefore no longer qualifies as a backend; the
//! in-memory [`BlockMap`] is that map behind a lock, with the familiar
//! map-flavoured API on `&self`.
//!
//! # Failure surface
//!
//! Backends with real failure modes (unreachable locations, corrupted
//! bytes) speak through the same family: [`BlockSource::fetch`] answers
//! `None` for anything unavailable, and the error-typed
//! [`BlockSource::read`] distinguishes *absent* from *corrupted* via
//! [`StoreError`]. [`BlockSink::remove`] covers deletion (failure
//! injection, garbage collection); pure write-adapters keep the no-op
//! default.

use crate::error::StoreError;
use ae_blocks::{Block, BlockId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Something blocks can be read from.
///
/// `fetch` returns `None` both for never-written and currently-unreachable
/// blocks: to a decoder they are the same thing.
///
/// Sources are `Sync`: round-based repair plans each round against an
/// immutable snapshot of the source from several planner threads at once
/// (see [`crate::RedundancyScheme::repair_missing`]). The lock-guarded
/// [`BlockMap`] and every `ae_store` backend satisfy this for free.
pub trait BlockSource: Sync {
    /// Fetches a block if it is currently available.
    fn fetch(&self, id: BlockId) -> Option<Block>;

    /// Whether the block is currently available (default: try a fetch).
    fn has(&self, id: BlockId) -> bool {
        self.fetch(id).is_some()
    }

    /// Error-typed read: like [`BlockSource::fetch`], but distinguishes a
    /// block that is absent/unreachable ([`StoreError::NotFound`]) from one
    /// that failed integrity verification ([`StoreError::Corrupted`]).
    /// Backends that verify checksums on read override this.
    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        self.fetch(id).ok_or(StoreError::NotFound(id))
    }

    /// The backend's **native async interior**, if it has one.
    ///
    /// Purely-sync backends (everything in `ae_store`, the in-memory
    /// [`BlockMap`]) keep the `None` default: their operations complete
    /// at call time, so there is nothing to pipeline. A sync-facing
    /// wrapper around a natively-async backend (an executor-owning
    /// adapter such as `ae_aio::BlockOn`) overrides this to expose the
    /// async repo plus a driver for its futures, and latency-aware
    /// callers — the archive's degraded `get` and `scrub` — switch to a
    /// pipelined, bounded-in-flight fetch path when the hook answers
    /// `Some` (byte-identical outcomes, collapsed wall-clock).
    fn as_async(&self) -> Option<crate::aio::AsyncHandle<'_>> {
        None
    }
}

/// Something blocks can be written to.
///
/// Takes `&self`: backends are interior-mutable so they can be shared
/// (`Arc<Store>`, `&Store`) between encoders, repair workers and archives
/// without wrapper gymnastics — the one mutability story of the family.
pub trait BlockSink {
    /// Stores a block, replacing any previous contents under the id.
    fn store(&self, id: BlockId, block: Block);

    /// Removes a block, returning whether it was present — the deletion
    /// half of the failure surface (failure injection, garbage collection,
    /// replaced hardware). Pure write-adapters (tier routers, counting
    /// sinks) keep the no-op default.
    fn remove(&self, _id: BlockId) -> bool {
        false
    }
}

/// A combined source + sink, as round-based repair requires (each round
/// reads survivors and writes back what it reconstructed) and as archives
/// require of their backend.
pub trait BlockRepo: BlockSource + BlockSink {}

impl<T: BlockSource + BlockSink + ?Sized> BlockRepo for T {}

impl<S: BlockSource + ?Sized> BlockSource for &S {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        (**self).fetch(id)
    }

    fn has(&self, id: BlockId) -> bool {
        (**self).has(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        (**self).read(id)
    }

    fn as_async(&self) -> Option<crate::aio::AsyncHandle<'_>> {
        (**self).as_async()
    }
}

impl<S: BlockSink + ?Sized> BlockSink for &S {
    fn store(&self, id: BlockId, block: Block) {
        (**self).store(id, block)
    }

    fn remove(&self, id: BlockId) -> bool {
        (**self).remove(id)
    }
}

impl<S: BlockSource + Send + ?Sized> BlockSource for Arc<S> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        (**self).fetch(id)
    }

    fn has(&self, id: BlockId) -> bool {
        (**self).has(id)
    }

    fn read(&self, id: BlockId) -> Result<Block, StoreError> {
        (**self).read(id)
    }

    fn as_async(&self) -> Option<crate::aio::AsyncHandle<'_>> {
        (**self).as_async()
    }
}

impl<S: BlockSink + ?Sized> BlockSink for Arc<S> {
    fn store(&self, id: BlockId, block: Block) {
        (**self).store(id, block)
    }

    fn remove(&self, id: BlockId) -> bool {
        (**self).remove(id)
    }
}

/// The in-memory backend: block id → contents behind a reader-writer lock.
/// Presence in the map *is* availability.
///
/// This is the plain `HashMap` of earlier revisions put behind the
/// lock-guarded wrapper, so it implements the `&self` backend family
/// honestly instead of ignoring `&mut` exclusivity. The map-flavoured
/// inherent API (`insert` / `remove` / `get` / `contains_key` / …) is kept,
/// on `&self`; reads return owned clones because no reference can outlive
/// the lock guard.
#[derive(Debug, Default)]
pub struct BlockMap {
    inner: RwLock<HashMap<BlockId, Block>>,
}

impl BlockMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block, returning the previous contents under the id.
    pub fn insert(&self, id: BlockId, block: Block) -> Option<Block> {
        self.inner.write().insert(id, block)
    }

    /// Removes a block, returning it if it was present.
    pub fn remove(&self, id: &BlockId) -> Option<Block> {
        self.inner.write().remove(id)
    }

    /// The block under `id`, cloned.
    pub fn get(&self, id: &BlockId) -> Option<Block> {
        self.inner.read().get(id).cloned()
    }

    /// Whether the map holds `id`.
    pub fn contains_key(&self, id: &BlockId) -> bool {
        self.inner.read().contains_key(id)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All ids currently present (snapshot, unordered).
    pub fn ids(&self) -> Vec<BlockId> {
        self.inner.read().keys().copied().collect()
    }

    /// All `(id, block)` pairs currently present (snapshot, unordered).
    pub fn entries(&self) -> Vec<(BlockId, Block)> {
        self.inner
            .read()
            .iter()
            .map(|(id, b)| (*id, b.clone()))
            .collect()
    }

    /// Removes every block.
    pub fn clear(&self) {
        self.inner.write().clear()
    }

    /// Keeps only the blocks for which `f` answers `true`.
    pub fn retain(&self, mut f: impl FnMut(&BlockId, &Block) -> bool) {
        self.inner.write().retain(|id, b| f(id, b));
    }
}

impl Clone for BlockMap {
    fn clone(&self) -> Self {
        BlockMap {
            inner: RwLock::new(self.inner.read().clone()),
        }
    }
}

impl PartialEq for BlockMap {
    fn eq(&self, other: &Self) -> bool {
        *self.inner.read() == *other.inner.read()
    }
}

impl Eq for BlockMap {}

impl FromIterator<(BlockId, Block)> for BlockMap {
    fn from_iter<I: IntoIterator<Item = (BlockId, Block)>>(iter: I) -> Self {
        BlockMap {
            inner: RwLock::new(iter.into_iter().collect()),
        }
    }
}

impl BlockSource for BlockMap {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.get(&id)
    }

    fn has(&self, id: BlockId) -> bool {
        self.contains_key(&id)
    }
}

impl BlockSink for BlockMap {
    fn store(&self, id: BlockId, block: Block) {
        self.insert(id, block);
    }

    fn remove(&self, id: BlockId) -> bool {
        BlockMap::remove(self, &id).is_some()
    }
}

/// A source that overlays repaired blocks on top of a base source without
/// mutating it — the working state of a degraded (read-only) repair.
pub struct Overlay<'a> {
    base: &'a dyn BlockSource,
    /// Blocks reconstructed so far.
    pub patch: BlockMap,
}

impl<'a> Overlay<'a> {
    /// Creates an empty overlay over `base`.
    pub fn new(base: &'a dyn BlockSource) -> Self {
        Overlay {
            base,
            patch: BlockMap::new(),
        }
    }
}

impl BlockSource for Overlay<'_> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.patch.get(&id).or_else(|| self.base.fetch(id))
    }

    fn has(&self, id: BlockId) -> bool {
        self.patch.contains_key(&id) || self.base.has(id)
    }
}

impl BlockSink for Overlay<'_> {
    fn store(&self, id: BlockId, block: Block) {
        self.patch.insert(id, block);
    }

    /// Removes from the patch only — the base stays untouched (that is the
    /// point of an overlay), so a block present in the base reports `false`.
    fn remove(&self, id: BlockId) -> bool {
        self.patch.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    #[test]
    fn block_map_source_sink_roundtrip() {
        let map = BlockMap::new();
        assert!(!map.has(id(1)));
        map.store(id(1), Block::from_vec(vec![1, 2]));
        assert!(map.has(id(1)));
        assert_eq!(map.fetch(id(1)).unwrap().as_slice(), &[1, 2]);
        assert_eq!(map.fetch(id(2)), None);
        assert_eq!(map.read(id(2)), Err(StoreError::NotFound(id(2))));
        assert!(BlockSink::remove(&map, id(1)));
        assert!(!BlockSink::remove(&map, id(1)));
    }

    #[test]
    fn block_map_is_shareable_across_threads() {
        let map = Arc::new(BlockMap::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for k in 0..50u64 {
                        // Through the trait: &self stores on a shared handle.
                        map.store(id(t * 100 + k), Block::from_vec(vec![t as u8; 8]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), 200);
    }

    #[test]
    fn block_map_compares_and_clones() {
        let a = BlockMap::new();
        a.insert(id(1), Block::from_vec(vec![1]));
        let b = a.clone();
        assert_eq!(a, b);
        b.insert(id(2), Block::from_vec(vec![2]));
        assert_ne!(a, b);
        let c: BlockMap = b.entries().into_iter().collect();
        assert_eq!(b, c);
    }

    #[test]
    fn overlay_reads_through_and_shields_writes() {
        let base = BlockMap::new();
        base.store(id(1), Block::from_vec(vec![1]));
        let overlay = Overlay::new(&base);
        assert!(overlay.has(id(1)));
        overlay.store(id(2), Block::from_vec(vec![2]));
        assert!(overlay.has(id(2)));
        assert_eq!(overlay.fetch(id(2)).unwrap().as_slice(), &[2]);
        // The base was not touched, and removes never reach it.
        assert!(!base.has(id(2)));
        assert!(!BlockSink::remove(&overlay, id(1)));
        assert!(base.has(id(1)));
    }

    #[test]
    fn repo_is_usable_as_trait_object_and_through_arc() {
        fn exercise(repo: &dyn BlockRepo) {
            repo.store(id(9), Block::zero(4));
            assert!(repo.has(id(9)));
        }
        let map = BlockMap::new();
        exercise(&map);
        assert_eq!(map.len(), 1);

        let shared: Arc<BlockMap> = Arc::new(BlockMap::new());
        // Arc<S> is itself a repo: no adapter needed for shared backends.
        exercise(&shared);
        assert_eq!(shared.len(), 1);
    }
}
