//! Where blocks live: the [`BlockSource`] / [`BlockSink`] traits.
//!
//! Encoders write into a sink; decoders read from a source; round-based
//! repair needs both ([`BlockRepo`]). The plain in-memory [`BlockMap`]
//! implements all three, as do the stores in `ae_store` — so the same
//! encode/repair code serves a unit test, an archive over a distributed
//! store and a simulation harness.

use ae_blocks::{Block, BlockId};
use std::collections::HashMap;

/// In-memory block container: block id → contents. Presence in the map
/// *is* availability. This replaces the old `ae_core::BlockMap` type alias
/// and is re-exported from there for compatibility.
pub type BlockMap = HashMap<BlockId, Block>;

/// Something blocks can be read from.
///
/// `fetch` returns `None` both for never-written and currently-unreachable
/// blocks: to a decoder they are the same thing.
///
/// Sources are `Sync`: round-based repair plans each round against an
/// immutable snapshot of the source from several planner threads at once
/// (see [`crate::RedundancyScheme::repair_missing`]). In-memory maps and
/// lock-guarded stores satisfy this for free.
pub trait BlockSource: Sync {
    /// Fetches a block if it is currently available.
    fn fetch(&self, id: BlockId) -> Option<Block>;

    /// Whether the block is currently available (default: try a fetch).
    fn has(&self, id: BlockId) -> bool {
        self.fetch(id).is_some()
    }
}

/// Something blocks can be written to.
///
/// Takes `&mut self` so the plain `HashMap` qualifies; concurrent stores
/// with interior mutability simply ignore the exclusivity.
pub trait BlockSink {
    /// Stores a block, replacing any previous contents under the id.
    fn store(&mut self, id: BlockId, block: Block);
}

/// A combined source + sink, as round-based repair requires (each round
/// reads survivors and writes back what it reconstructed).
pub trait BlockRepo: BlockSource + BlockSink {}

impl<T: BlockSource + BlockSink + ?Sized> BlockRepo for T {}

impl BlockSource for BlockMap {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.get(&id).cloned()
    }

    fn has(&self, id: BlockId) -> bool {
        self.contains_key(&id)
    }
}

impl BlockSink for BlockMap {
    fn store(&mut self, id: BlockId, block: Block) {
        self.insert(id, block);
    }
}

impl<S: BlockSource + ?Sized> BlockSource for &S {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        (**self).fetch(id)
    }

    fn has(&self, id: BlockId) -> bool {
        (**self).has(id)
    }
}

/// A source that overlays repaired blocks on top of a base source without
/// mutating it — the working state of a degraded (read-only) repair.
pub struct Overlay<'a> {
    base: &'a dyn BlockSource,
    /// Blocks reconstructed so far.
    pub patch: BlockMap,
}

impl<'a> Overlay<'a> {
    /// Creates an empty overlay over `base`.
    pub fn new(base: &'a dyn BlockSource) -> Self {
        Overlay {
            base,
            patch: BlockMap::new(),
        }
    }
}

impl BlockSource for Overlay<'_> {
    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.patch.get(&id).cloned().or_else(|| self.base.fetch(id))
    }

    fn has(&self, id: BlockId) -> bool {
        self.patch.contains_key(&id) || self.base.has(id)
    }
}

impl BlockSink for Overlay<'_> {
    fn store(&mut self, id: BlockId, block: Block) {
        self.patch.insert(id, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::NodeId;

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    #[test]
    fn block_map_source_sink_roundtrip() {
        let mut map = BlockMap::new();
        assert!(!map.has(id(1)));
        map.store(id(1), Block::from_vec(vec![1, 2]));
        assert!(map.has(id(1)));
        assert_eq!(map.fetch(id(1)).unwrap().as_slice(), &[1, 2]);
        assert_eq!(map.fetch(id(2)), None);
    }

    #[test]
    fn overlay_reads_through_and_shields_writes() {
        let mut base = BlockMap::new();
        base.store(id(1), Block::from_vec(vec![1]));
        let mut overlay = Overlay::new(&base);
        assert!(overlay.has(id(1)));
        overlay.store(id(2), Block::from_vec(vec![2]));
        assert!(overlay.has(id(2)));
        assert_eq!(overlay.fetch(id(2)).unwrap().as_slice(), &[2]);
        // The base was not touched.
        assert!(!base.has(id(2)));
    }

    #[test]
    fn repo_is_usable_as_trait_object() {
        fn exercise(repo: &mut dyn BlockRepo) {
            repo.store(id(9), Block::zero(4));
            assert!(repo.has(id(9)));
        }
        let mut map = BlockMap::new();
        exercise(&mut map);
        assert_eq!(map.len(), 1);
    }
}
