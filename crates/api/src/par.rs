//! Shared repair-parallelism knobs.
//!
//! Round-based repair — both the byte-plane
//! [`crate::RedundancyScheme::repair_missing`] default and the
//! availability-plane round loop in `ae_sim` — plans each round against an
//! immutable snapshot, so the planning fans out across scoped threads and
//! commits sequentially. This module owns the one decision they share: how
//! many planner threads to use.

use std::sync::OnceLock;

/// Number of threads round-based repair planning fans out across.
///
/// Resolution order:
///
/// 1. with the `serial-repair` feature enabled, always 1 (the escape
///    hatch CI uses to prove the parallel and serial planners agree);
/// 2. the `AE_REPAIR_THREADS` environment variable, if it parses to a
///    positive integer (read once per process);
/// 3. [`std::thread::available_parallelism`].
///
/// Planners treat 1 as "plan inline, spawn nothing", so single-core hosts
/// and the feature-gated escape hatch take the exact sequential code path.
pub fn repair_threads() -> usize {
    if cfg!(feature = "serial-repair") {
        return 1;
    }
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("AE_REPAIR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Applies `f` to contiguous chunks of `items` across up to `threads`
/// scoped threads, concatenating the chunk results in chunk order — so
/// the output is identical to `f(items)` whenever `f` is element-wise.
///
/// Below `min_items` (or with one thread) the whole slice is processed
/// inline: scoped-thread spawn overhead beats the win on small rounds.
/// This is the one fan-out primitive behind both repair planners (the
/// byte-plane worklist and the availability plane's round scans).
pub fn par_chunks<T, R, F>(items: &[T], threads: usize, min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Send + Sync + Copy,
{
    let threads = threads.min(items.len());
    if threads <= 1 || items.len() < min_items {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("repair planner thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_preserves_order_for_any_thread_count() {
        let items: Vec<u32> = (0..50).collect();
        let square_odds = |chunk: &[u32]| -> Vec<u32> {
            chunk
                .iter()
                .filter(|&&x| x % 2 == 1)
                .map(|&x| x * x)
                .collect()
        };
        let inline = square_odds(&items);
        for threads in [1usize, 2, 3, 7, 64] {
            assert_eq!(
                par_chunks(&items, threads, 1, square_odds),
                inline,
                "{threads} threads"
            );
        }
        // Below the parallel threshold the slice is processed inline.
        assert_eq!(par_chunks(&items, 8, 1_000, square_odds), inline);
        assert!(par_chunks(&[] as &[u32], 4, 0, square_odds).is_empty());
    }

    #[test]
    fn repair_threads_is_positive_and_stable() {
        let n = repair_threads();
        assert!(n >= 1);
        assert_eq!(n, repair_threads(), "memoized");
        #[cfg(feature = "serial-repair")]
        assert_eq!(n, 1, "serial-repair forces one planner thread");
    }
}
