//! The [`RedundancyScheme`] trait: one interface for every code.
//!
//! A scheme owns its encoding state (alpha entanglement keeps a strand
//! frontier, Reed-Solomon a partial stripe, replication a write counter)
//! and exposes two planes:
//!
//! * the **byte plane** — [`RedundancyScheme::encode_batch`],
//!   [`RedundancyScheme::repair_block`] and
//!   [`RedundancyScheme::repair_missing`] move real bytes through a
//!   [`BlockSink`]/[`BlockSource`];
//! * the **availability plane** — [`RedundancyScheme::block_ids`],
//!   [`RedundancyScheme::is_repairable`] and friends describe the code's
//!   structure so a simulation can drive disasters over flags only, the
//!   way the paper's §V.C evaluation does.
//!
//! The trait is object-safe; simulations and stores hold
//! `Box<dyn RedundancyScheme>` / `&dyn RedundancyScheme`.

use crate::error::{AeError, RepairError};
use crate::io::{BlockRepo, BlockSink, BlockSource};
use ae_blocks::{Block, BlockId};

/// What one [`RedundancyScheme::encode_batch`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeReport {
    /// Lattice position of the batch's first data block (1-based; data
    /// positions are shared across schemes).
    pub first_node: u64,
    /// All block ids stored by this call, data and redundancy, in write
    /// order. Redundancy that is still buffered (for example a partial
    /// Reed-Solomon stripe) appears only once a later call or
    /// [`RedundancyScheme::seal`] flushes it.
    pub ids: Vec<BlockId>,
}

impl EncodeReport {
    /// Data blocks written by this call.
    pub fn data_written(&self) -> u64 {
        self.ids.iter().filter(|id| id.is_data()).count() as u64
    }

    /// Redundancy blocks written by this call.
    pub fn redundancy_written(&self) -> u64 {
        self.ids.len() as u64 - self.data_written()
    }
}

/// The Table IV cost model of a scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairCost {
    /// Blocks read to repair one isolated missing block ("SF" row): 2 for
    /// alpha entanglement, `k` for RS(k, m), 1 for replication.
    pub single_failure_reads: u32,
    /// Additional storage as a percentage of the data ("AS" row).
    pub additional_storage_pct: f64,
}

/// Statistics of one repair round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Blocks repaired this round (data + redundancy).
    pub repaired: usize,
    /// Of which data blocks.
    pub data_repaired: usize,
}

/// Outcome of a round-based [`RedundancyScheme::repair_missing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSummary {
    /// Per-round statistics, in order.
    pub rounds: Vec<RoundStats>,
    /// Targets the scheme could not reconstruct.
    pub unrecovered: Vec<BlockId>,
    /// Total blocks read while repairing.
    pub blocks_read: u64,
}

impl RepairSummary {
    /// Number of rounds that made progress.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total blocks repaired.
    pub fn total_repaired(&self) -> usize {
        self.rounds.iter().map(|r| r.repaired).sum()
    }

    /// Total data blocks repaired.
    pub fn total_data_repaired(&self) -> usize {
        self.rounds.iter().map(|r| r.data_repaired).sum()
    }

    /// Data blocks repaired in round 1 — single failures in the paper's
    /// sense (§V.C.3, Fig 13).
    pub fn single_failure_data_repairs(&self) -> usize {
        self.rounds.first().map_or(0, |r| r.data_repaired)
    }

    /// Whether every target was reconstructed.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered.is_empty()
    }

    /// Converts to a hard error when anything was left unrecovered.
    pub fn into_result(self) -> Result<RepairSummary, RepairError> {
        if self.unrecovered.is_empty() {
            Ok(self)
        } else {
            Err(RepairError::Unrecoverable {
                targets: self.unrecovered,
            })
        }
    }
}

/// A redundancy scheme: encode data blocks into redundancy, repair missing
/// blocks from survivors, describe the structure to simulations.
///
/// All data blocks share the id space `BlockId::Data(NodeId(1..))` in
/// write order; every scheme emits its own redundancy ids (lattice
/// parities, parity shards, replicas). Block sizes are uniform within a
/// scheme instance.
pub trait RedundancyScheme: Send {
    /// Paper-style display name, e.g. `AE(3,2,5)`, `RS(10,4)`,
    /// `3-way replic.`.
    fn scheme_name(&self) -> String;

    /// Data blocks encoded so far (the write counter).
    fn data_written(&self) -> u64;

    /// The Table IV cost model.
    fn repair_cost(&self) -> RepairCost;

    /// Encodes a batch of equal-sized data blocks: assigns them the next
    /// positions, writes them and their redundancy into `sink`.
    ///
    /// Batching is the hot path — implementations amortise per-block
    /// bookkeeping (strand-head lookups, stripe assembly) over the slice.
    ///
    /// # Errors
    ///
    /// Fails (without writing anything) when a block's size differs from
    /// the scheme's.
    fn encode_batch(
        &mut self,
        blocks: &[Block],
        sink: &mut dyn BlockSink,
    ) -> Result<EncodeReport, AeError>;

    /// Flushes any buffered redundancy (for example a partial
    /// Reed-Solomon stripe, padded with virtual zero blocks). Returns the
    /// ids written; the default is a no-op for schemes that never buffer.
    fn seal(&mut self, _sink: &mut dyn BlockSink) -> Result<Vec<BlockId>, AeError> {
        Ok(Vec::new())
    }

    /// Repairs a single block from currently available blocks.
    /// `data_blocks` bounds the written extent (repair coordinators often
    /// know it without owning the encoder).
    ///
    /// # Errors
    ///
    /// [`RepairError::NoCompleteTuple`] names the unavailable blocks that
    /// blocked every repair option.
    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        data_blocks: u64,
    ) -> Result<Block, RepairError>;

    /// Round-based repair of `targets` until fixpoint: each round repairs
    /// every target that currently has a complete repair option, commits
    /// them together, and newly repaired blocks enable further repairs
    /// next round (§V.C.4). Already-present targets are skipped.
    fn repair_missing(
        &self,
        repo: &mut dyn BlockRepo,
        targets: &[BlockId],
        data_blocks: u64,
    ) -> RepairSummary {
        let mut missing: Vec<BlockId> = targets
            .iter()
            .copied()
            .filter(|&id| !repo.has(id))
            .collect();
        let mut rounds = Vec::new();
        let mut blocks_read = 0;
        while !missing.is_empty() {
            // Plan all repairs against the round-start state...
            let mut planned: Vec<(BlockId, Block)> = Vec::new();
            let mut still_missing = Vec::new();
            for &id in &missing {
                match self.repair_block(&*repo, id, data_blocks) {
                    Ok(block) => planned.push((id, block)),
                    Err(_) => still_missing.push(id),
                }
            }
            if planned.is_empty() {
                break; // fixpoint: a dead pattern remains
            }
            blocks_read +=
                self.repair_traffic(&planned.iter().map(|(id, _)| *id).collect::<Vec<_>>());
            let stats = RoundStats {
                repaired: planned.len(),
                data_repaired: planned.iter().filter(|(id, _)| id.is_data()).count(),
            };
            // ...then commit them together, making them visible next round.
            for (id, block) in planned {
                repo.store(id, block);
            }
            rounds.push(stats);
            missing = still_missing;
        }
        RepairSummary {
            rounds,
            unrecovered: missing,
            blocks_read,
        }
    }

    /// Blocks read to repair the given set of blocks in one round (used
    /// for traffic accounting). The default charges the single-failure
    /// cost per block; Reed-Solomon overrides it to charge one stripe
    /// decode per touched stripe.
    fn repair_traffic(&self, repaired: &[BlockId]) -> u64 {
        repaired.len() as u64 * self.repair_cost().single_failure_reads as u64
    }

    // --- availability plane -------------------------------------------

    /// Every block a deployment of `data_blocks` data blocks stores, in
    /// write order with redundancy interleaved next to the data it
    /// protects. Simulations use this as the placement universe.
    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId>;

    /// Whether `id`, assumed missing, could be repaired right now given
    /// the availability oracle `avail` (asked only about other blocks).
    fn is_repairable(&self, id: BlockId, data_blocks: u64, avail: &dyn Fn(BlockId) -> bool)
        -> bool;

    /// Whether a repair of missing block `id` would be a *single failure*
    /// in the paper's Fig 13 sense: solvable in one step with the minimum
    /// read cost. Default: repairable right now.
    fn is_single_failure(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        self.is_repairable(id, data_blocks, avail)
    }

    /// Redundancy blocks worth repairing under *minimal maintenance*
    /// (§V.C.2) for the currently-missing data blocks — e.g. the members
    /// of their repair tuples. Schemes that repair data only (RS,
    /// replication) keep the empty default.
    fn maintenance_targets(&self, _missing_data: &[BlockId], _data_blocks: u64) -> Vec<BlockId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::BlockMap;
    use ae_blocks::NodeId;

    /// A toy mirror scheme (1 extra copy) exercising the default
    /// `repair_missing` round loop.
    struct Mirror {
        written: u64,
    }

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn copy(i: u64) -> BlockId {
        BlockId::Replica(ae_blocks::ReplicaId {
            node: NodeId(i),
            copy: 1,
        })
    }

    impl RedundancyScheme for Mirror {
        fn scheme_name(&self) -> String {
            "2-way replic.".into()
        }

        fn data_written(&self) -> u64 {
            self.written
        }

        fn repair_cost(&self) -> RepairCost {
            RepairCost {
                single_failure_reads: 1,
                additional_storage_pct: 100.0,
            }
        }

        fn encode_batch(
            &mut self,
            blocks: &[Block],
            sink: &mut dyn BlockSink,
        ) -> Result<EncodeReport, AeError> {
            let first_node = self.written + 1;
            let mut ids = Vec::new();
            for b in blocks {
                self.written += 1;
                sink.store(data(self.written), b.clone());
                sink.store(copy(self.written), b.clone());
                ids.push(data(self.written));
                ids.push(copy(self.written));
            }
            Ok(EncodeReport { first_node, ids })
        }

        fn repair_block(
            &self,
            source: &dyn BlockSource,
            id: BlockId,
            _data_blocks: u64,
        ) -> Result<Block, RepairError> {
            let other = match id {
                BlockId::Data(NodeId(i)) => copy(i),
                BlockId::Replica(r) => data(r.node.0),
                _ => return Err(RepairError::ForeignBlock { id }),
            };
            source.fetch(other).ok_or(RepairError::NoCompleteTuple {
                target: id,
                missing: vec![other],
            })
        }

        fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
            (1..=data_blocks).flat_map(|i| [data(i), copy(i)]).collect()
        }

        fn is_repairable(
            &self,
            id: BlockId,
            _data_blocks: u64,
            avail: &dyn Fn(BlockId) -> bool,
        ) -> bool {
            match id {
                BlockId::Data(NodeId(i)) => avail(copy(i)),
                BlockId::Replica(r) => avail(data(r.node.0)),
                _ => false,
            }
        }
    }

    #[test]
    fn default_repair_missing_round_trips() {
        let mut scheme = Mirror { written: 0 };
        let mut store = BlockMap::new();
        let blocks: Vec<Block> = (0..10u8).map(|k| Block::from_vec(vec![k; 8])).collect();
        let report = scheme.encode_batch(&blocks, &mut store).unwrap();
        assert_eq!(report.first_node, 1);
        assert_eq!(report.data_written(), 10);
        assert_eq!(report.redundancy_written(), 10);

        // Lose a data block and an unrelated copy.
        let original = store.remove(&data(4)).unwrap();
        store.remove(&copy(7));
        let summary = scheme.repair_missing(&mut store, &[data(4), copy(7)], 10);
        assert!(summary.fully_recovered());
        assert_eq!(summary.round_count(), 1);
        assert_eq!(summary.total_repaired(), 2);
        assert_eq!(summary.blocks_read, 2);
        assert_eq!(store[&data(4)], original);
        assert!(summary.into_result().is_ok());
    }

    #[test]
    fn default_repair_missing_reports_dead_blocks() {
        let mut scheme = Mirror { written: 0 };
        let mut store = BlockMap::new();
        scheme
            .encode_batch(&[Block::zero(4), Block::from_vec(vec![1; 4])], &mut store)
            .unwrap();
        // Both copies of block 2 gone: unrecoverable.
        store.remove(&data(2));
        store.remove(&copy(2));
        let summary = scheme.repair_missing(&mut store, &[data(2), copy(2)], 2);
        assert!(!summary.fully_recovered());
        assert_eq!(summary.unrecovered.len(), 2);
        assert!(matches!(
            summary.into_result(),
            Err(RepairError::Unrecoverable { targets }) if targets.len() == 2
        ));
    }

    #[test]
    fn scheme_is_object_safe() {
        let mut boxed: Box<dyn RedundancyScheme> = Box::new(Mirror { written: 0 });
        let mut store = BlockMap::new();
        boxed.encode_batch(&[Block::zero(4)], &mut store).unwrap();
        assert_eq!(boxed.scheme_name(), "2-way replic.");
        assert_eq!(boxed.data_written(), 1);
        assert_eq!(boxed.block_ids(1).len(), 2);
    }
}
