//! The [`RedundancyScheme`] trait: one interface for every code.
//!
//! A scheme owns its encoding state (alpha entanglement keeps a strand
//! frontier, Reed-Solomon a partial stripe, replication a write counter)
//! and exposes two planes:
//!
//! * the **byte plane** — [`RedundancyScheme::encode_batch`],
//!   [`RedundancyScheme::repair_block`] and
//!   [`RedundancyScheme::repair_missing`] move real bytes through a
//!   [`BlockSink`]/[`BlockSource`];
//! * the **availability plane** — [`RedundancyScheme::block_ids`],
//!   [`RedundancyScheme::is_repairable`] and friends describe the code's
//!   structure so a simulation can drive disasters over flags only, the
//!   way the paper's §V.C evaluation does.
//!
//! The trait is object-safe; simulations and stores hold
//! `Box<dyn RedundancyScheme>` / `&dyn RedundancyScheme`.

use crate::error::{AeError, RepairError};
use crate::io::{BlockRepo, BlockSink, BlockSource};
use ae_blocks::{Block, BlockId};
use std::collections::HashMap;

/// What one [`RedundancyScheme::encode_batch`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeReport {
    /// Lattice position of the batch's first data block (1-based; data
    /// positions are shared across schemes).
    pub first_node: u64,
    /// All block ids stored by this call, data and redundancy, in write
    /// order. Redundancy that is still buffered (for example a partial
    /// Reed-Solomon stripe) appears only once a later call or
    /// [`RedundancyScheme::seal`] flushes it.
    pub ids: Vec<BlockId>,
}

impl EncodeReport {
    /// Data blocks written by this call.
    pub fn data_written(&self) -> u64 {
        self.ids.iter().filter(|id| id.is_data()).count() as u64
    }

    /// Redundancy blocks written by this call.
    pub fn redundancy_written(&self) -> u64 {
        self.ids.len() as u64 - self.data_written()
    }
}

/// The Table IV cost model of a scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairCost {
    /// Blocks read to repair one isolated missing block ("SF" row): 2 for
    /// alpha entanglement, `k` for RS(k, m), 1 for replication.
    pub single_failure_reads: u32,
    /// Additional storage as a percentage of the data ("AS" row).
    pub additional_storage_pct: f64,
    /// Blocks left with a single repair tuple at a chain extremity — the
    /// open-chain weakness of §IV.B.1 (the tail data block and its only
    /// parity form a dead pair). Zero for closed chains and for schemes
    /// without chain structure; Table IV-style cost reports use it to
    /// distinguish open from closed chains instead of letting the weaker
    /// redundancy pass silently.
    pub extremity_exposed: u32,
}

impl RepairCost {
    /// Cost model without any chain-extremity exposure (every scheme but
    /// open entanglement chains).
    pub fn new(single_failure_reads: u32, additional_storage_pct: f64) -> Self {
        RepairCost {
            single_failure_reads,
            additional_storage_pct,
            extremity_exposed: 0,
        }
    }
}

/// Statistics of one repair round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Blocks repaired this round (data + redundancy).
    pub repaired: usize,
    /// Of which data blocks.
    pub data_repaired: usize,
    /// Blocks read to execute this round's repairs
    /// ([`RedundancyScheme::repair_traffic`] over the round's commit set) —
    /// per-round traffic, so callers can report repair-cost distributions
    /// instead of a bare total.
    pub blocks_read: u64,
}

/// Outcome of a round-based [`RedundancyScheme::repair_missing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSummary {
    /// Per-round statistics, in order.
    pub rounds: Vec<RoundStats>,
    /// Targets the scheme could not reconstruct.
    pub unrecovered: Vec<BlockId>,
    /// Total blocks read while repairing.
    pub blocks_read: u64,
}

impl RepairSummary {
    /// Number of rounds that made progress.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Total blocks repaired.
    pub fn total_repaired(&self) -> usize {
        self.rounds.iter().map(|r| r.repaired).sum()
    }

    /// Total data blocks repaired.
    pub fn total_data_repaired(&self) -> usize {
        self.rounds.iter().map(|r| r.data_repaired).sum()
    }

    /// Data blocks repaired in round 1 — single failures in the paper's
    /// sense (§V.C.3, Fig 13).
    pub fn single_failure_data_repairs(&self) -> usize {
        self.rounds.first().map_or(0, |r| r.data_repaired)
    }

    /// Whether every target was reconstructed.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered.is_empty()
    }

    /// Converts to a hard error when anything was left unrecovered.
    pub fn into_result(self) -> Result<RepairSummary, RepairError> {
        if self.unrecovered.is_empty() {
            Ok(self)
        } else {
            Err(RepairError::Unrecoverable {
                targets: self.unrecovered,
            })
        }
    }
}

/// A redundancy scheme: encode data blocks into redundancy, repair missing
/// blocks from survivors, describe the structure to simulations.
///
/// All data blocks share the id space `BlockId::Data(NodeId(1..))` in
/// write order; every scheme emits its own redundancy ids (lattice
/// parities, parity shards, replicas). Block sizes are uniform within a
/// scheme instance.
///
/// Schemes are `Send + Sync` and every method takes `&self`: encoding
/// state (a strand frontier, a partial stripe, a write counter) sits
/// behind interior mutability inside the scheme, so one instance can be
/// shared — `Arc<dyn RedundancyScheme>` between an archive, a plane and
/// repair workers — with no wrapper gymnastics. This mirrors the backend
/// family ([`BlockSink`] is `&self` too): shared-by-default is the one
/// mutability story of the public API.
pub trait RedundancyScheme: Send + Sync {
    /// Paper-style display name, e.g. `AE(3,2,5)`, `RS(10,4)`,
    /// `3-way replic.`.
    fn scheme_name(&self) -> String;

    /// Data blocks encoded so far (the write counter).
    fn data_written(&self) -> u64;

    /// The Table IV cost model.
    fn repair_cost(&self) -> RepairCost;

    /// Encodes a batch of equal-sized data blocks: assigns them the next
    /// positions, writes them and their redundancy into `sink`.
    ///
    /// Batching is the hot path — implementations amortise per-block
    /// bookkeeping (strand-head lookups, stripe assembly) over the slice.
    ///
    /// # Errors
    ///
    /// Fails (without writing anything) when a block's size differs from
    /// the scheme's.
    fn encode_batch(&self, blocks: &[Block], sink: &dyn BlockSink)
        -> Result<EncodeReport, AeError>;

    /// Flushes any buffered redundancy (for example a partial
    /// Reed-Solomon stripe, padded with virtual zero blocks). Returns the
    /// ids written; the default is a no-op for schemes that never buffer.
    fn seal(&self, _sink: &dyn BlockSink) -> Result<Vec<BlockId>, AeError> {
        Ok(Vec::new())
    }

    /// Serializes the scheme's **encoder frontier** — everything beyond
    /// the already-stored blocks that the encoder needs to keep producing
    /// (the AE strand-frontier counter, the Reed-Solomon write counter and
    /// buffered-stripe length, replication's write counter, a chain's
    /// sealed flag) — into a small, versioned, scheme-defined byte string.
    ///
    /// The snapshot is deliberately *thin*: block contents that already
    /// live on the backend (frontier parities, buffered stripe data) are
    /// **not** embedded; [`RedundancyScheme::restore_frontier`] refetches
    /// them, the way the paper's broker recovers after a crash ("it only
    /// needs to retrieve the p-blocks from the remote nodes", §IV.A).
    /// Archives persist the snapshot in their on-backend metadata journal
    /// after every mutation, making the whole archive crash-recoverable.
    ///
    /// The default snapshot is the little-endian write counter — enough
    /// for schemes whose only state is `data_written` — but restoring is
    /// opt-in: the default [`RedundancyScheme::restore_frontier`] reports
    /// [`AeError::FrontierUnsupported`]. Implement **both** to make a
    /// custom scheme archive-recoverable.
    fn frontier_snapshot(&self) -> Vec<u8> {
        self.data_written().to_le_bytes().to_vec()
    }

    /// Restores the encoder frontier from a
    /// [`RedundancyScheme::frontier_snapshot`], refetching any in-flight
    /// blocks (strand-frontier parities, buffered partial-stripe data)
    /// from `source`. After a successful restore the scheme continues
    /// encoding **bit-identically** to the instance that took the
    /// snapshot.
    ///
    /// # Errors
    ///
    /// * [`AeError::CorruptFrontier`] — the snapshot bytes do not parse
    ///   (wrong version, wrong length, inconsistent counters).
    /// * [`AeError::FrontierBlockMissing`] — a block the restore needed is
    ///   no longer available from `source`; the error names it.
    /// * [`AeError::FrontierUnsupported`] — the scheme keeps the default
    ///   and cannot be restored.
    fn restore_frontier(&self, _snapshot: &[u8], _source: &dyn BlockSource) -> Result<(), AeError> {
        Err(AeError::FrontierUnsupported {
            scheme: self.scheme_name(),
        })
    }

    /// Repairs a single block from currently available blocks.
    /// `data_blocks` bounds the written extent (repair coordinators often
    /// know it without owning the encoder).
    ///
    /// # Errors
    ///
    /// [`RepairError::NoCompleteTuple`] names the unavailable blocks that
    /// blocked every repair option.
    fn repair_block(
        &self,
        source: &dyn BlockSource,
        id: BlockId,
        data_blocks: u64,
    ) -> Result<Block, RepairError>;

    /// Round-based repair of `targets` until fixpoint: each round repairs
    /// every target that currently has a complete repair option, commits
    /// them together, and newly repaired blocks enable further repairs
    /// next round (§V.C.4). Already-present targets are skipped.
    ///
    /// The default plans each round against the immutable round-start
    /// snapshot, fanning [`RedundancyScheme::repair_block`] calls across
    /// [`crate::repair_threads`] scoped threads, then commits the planned
    /// repairs in deterministic (target-order) sequence. Between rounds it
    /// keeps a worklist: a failed target is re-attempted only after one of
    /// the blocks its last [`RepairError`] named was repaired — sound
    /// because an incomplete repair option can only complete when one of
    /// its named-missing members comes back. Rounds, per-round statistics,
    /// traffic and unrecovered targets are bit-identical to
    /// [`RedundancyScheme::repair_missing_serial`] (proved by the parity
    /// suites, which compare both planners in one process; the
    /// `serial-repair` feature additionally routes this method to the
    /// serial path outright); multi-failure disasters just plan each
    /// round in parallel and skip provably-futile re-attempts.
    fn repair_missing(
        &self,
        repo: &dyn BlockRepo,
        targets: &[BlockId],
        data_blocks: u64,
    ) -> RepairSummary {
        if cfg!(feature = "serial-repair") {
            return self.repair_missing_serial(repo, targets, data_blocks);
        }
        repair_missing_worklist(self, repo, targets, data_blocks)
    }

    /// The reference single-threaded round loop behind
    /// [`RedundancyScheme::repair_missing`]: every round re-attempts every
    /// still-missing target against the round-start state. Kept public as
    /// the escape hatch (the `serial-repair` feature routes
    /// `repair_missing` here) and as the oracle the parallel planner is
    /// tested against.
    fn repair_missing_serial(
        &self,
        repo: &dyn BlockRepo,
        targets: &[BlockId],
        data_blocks: u64,
    ) -> RepairSummary {
        let mut missing: Vec<BlockId> = targets
            .iter()
            .copied()
            .filter(|&id| !repo.has(id))
            .collect();
        let mut rounds = Vec::new();
        let mut blocks_read = 0;
        while !missing.is_empty() {
            // Plan all repairs against the round-start state...
            let mut planned: Vec<(BlockId, Block)> = Vec::new();
            let mut still_missing = Vec::new();
            for &id in &missing {
                match self.repair_block(repo, id, data_blocks) {
                    Ok(block) => planned.push((id, block)),
                    Err(_) => still_missing.push(id),
                }
            }
            if planned.is_empty() {
                break; // fixpoint: a dead pattern remains
            }
            let round_reads =
                self.repair_traffic(&planned.iter().map(|(id, _)| *id).collect::<Vec<_>>());
            blocks_read += round_reads;
            let stats = RoundStats {
                repaired: planned.len(),
                data_repaired: planned.iter().filter(|(id, _)| id.is_data()).count(),
                blocks_read: round_reads,
            };
            // ...then commit them together, making them visible next round.
            for (id, block) in planned {
                repo.store(id, block);
            }
            rounds.push(stats);
            missing = still_missing;
        }
        RepairSummary {
            rounds,
            unrecovered: missing,
            blocks_read,
        }
    }

    /// Blocks read to repair the given set of blocks in one round (used
    /// for traffic accounting). The default charges the single-failure
    /// cost per block; Reed-Solomon overrides it to charge one stripe
    /// decode per touched stripe.
    fn repair_traffic(&self, repaired: &[BlockId]) -> u64 {
        repaired.len() as u64 * self.repair_cost().single_failure_reads as u64
    }

    // --- availability plane -------------------------------------------

    /// Every block a deployment of `data_blocks` data blocks stores, in
    /// write order with redundancy interleaved next to the data it
    /// protects. Simulations use this as the placement universe.
    fn block_ids(&self, data_blocks: u64) -> Vec<BlockId>;

    /// Whether `id`, assumed missing, could be repaired right now given
    /// the availability oracle `avail` (asked only about other blocks).
    fn is_repairable(&self, id: BlockId, data_blocks: u64, avail: &dyn Fn(BlockId) -> bool)
        -> bool;

    /// Whether a repair of missing block `id` would be a *single failure*
    /// in the paper's Fig 13 sense: solvable in one step with the minimum
    /// read cost. Default: repairable right now.
    fn is_single_failure(
        &self,
        id: BlockId,
        data_blocks: u64,
        avail: &dyn Fn(BlockId) -> bool,
    ) -> bool {
        self.is_repairable(id, data_blocks, avail)
    }

    /// Redundancy blocks worth repairing under *minimal maintenance*
    /// (§V.C.2) for the currently-missing data blocks — e.g. the members
    /// of their repair tuples. Schemes that repair data only (RS,
    /// replication) keep the empty default.
    fn maintenance_targets(&self, _missing_data: &[BlockId], _data_blocks: u64) -> Vec<BlockId> {
        Vec::new()
    }

    // --- dense arithmetic indexing ------------------------------------

    /// Number of blocks a deployment of `data_blocks` data blocks stores —
    /// the length of [`RedundancyScheme::block_ids`]. The default falls
    /// back to enumerating the universe; schemes with arithmetic structure
    /// override it with a closed form.
    fn universe_len(&self, data_blocks: u64) -> u64 {
        self.block_ids(data_blocks).len() as u64
    }

    /// Maps `id` to its dense position in write order — the index `id`
    /// occupies in `block_ids(data_blocks)` — in O(1) arithmetic. Returns
    /// `None` for ids outside the universe (foreign schemes, positions
    /// past the written extent) or for universes too large to index with
    /// a `u32`.
    ///
    /// Authoritative only when [`RedundancyScheme::supports_dense_index`]
    /// is `true`; the default (for schemes without arithmetic structure)
    /// knows nothing and answers `None` for every id, and callers such as
    /// `SchemePlane` fall back to a hash index built by enumeration.
    fn dense_index(&self, _id: &BlockId, _data_blocks: u64) -> Option<u32> {
        None
    }

    /// The inverse of [`RedundancyScheme::dense_index`]: the id of the
    /// block at dense universe position `k`, i.e. `block_ids(data_blocks)
    /// [k]`. Returns `None` for `k >= universe_len(data_blocks)`.
    ///
    /// Together with `dense_index` this is a full id ⇄ position bijection:
    /// `block_at(dense_index(id)) == id` and `dense_index(block_at(k)) ==
    /// k` over the whole universe. When
    /// [`RedundancyScheme::supports_dense_index`] is `true` both
    /// directions are authoritative O(1) arithmetic, and a caller such as
    /// `SchemePlane` never needs to materialize the universe at all —
    /// positions are the working representation and ids are recomputed at
    /// the edges (repair commits, summaries).
    ///
    /// The default falls back to enumerating the universe — O(universe)
    /// per call, acceptable only for tests and for schemes that callers
    /// materialize anyway.
    fn block_at(&self, k: u32, data_blocks: u64) -> Option<BlockId> {
        self.block_ids(data_blocks).get(k as usize).copied()
    }

    /// Whether [`RedundancyScheme::dense_index`] /
    /// [`RedundancyScheme::block_at`] form an authoritative O(1) bijection
    /// over the whole universe (AE, RS, replication and the store-backed
    /// chain/geo schemes all do; custom schemes keep the `false` default
    /// and pay a materialized universe plus a `HashMap`).
    fn supports_dense_index(&self) -> bool {
        false
    }
}

/// How many targets one round must reach before planning fans out across
/// threads — below this, scoped-thread spawn overhead beats the win.
const PARALLEL_PLAN_MIN: usize = 256;

/// End-of-chain sentinel in [`Waiting::Dense`] lists.
const NO_WAITER: u32 = u32::MAX;

/// Who is waiting on a blocker: target indices keyed by the blocker's
/// dense universe position when the scheme has the arithmetic hook, by
/// the blocker id otherwise. The dense variant stores the per-blocker
/// lists as intrusive chains over two flat arrays — 4 bytes per universe
/// slot plus 8 per filing, no per-slot allocations.
enum Waiting {
    Dense {
        /// Per universe slot, index of the most recent filing (chain
        /// head), or [`NO_WAITER`].
        head: Vec<u32>,
        /// Filing arena: `(previous filing on the same blocker, target)`.
        entries: Vec<(u32, u32)>,
    },
    Hash(HashMap<BlockId, Vec<u32>>),
}

impl Waiting {
    /// Dense keying pays 4 bytes per universe slot up front, so it is
    /// only worth it when the target set is a sizable share of the
    /// universe (dense disasters); scattered repairs in a huge deployment
    /// keep the map.
    fn for_repair<S: RedundancyScheme + ?Sized>(
        scheme: &S,
        targets: usize,
        data_blocks: u64,
    ) -> Self {
        if scheme.supports_dense_index() {
            let len = scheme.universe_len(data_blocks);
            if len <= (targets as u64).saturating_mul(8).max(1 << 16) {
                return Waiting::Dense {
                    head: vec![NO_WAITER; len as usize],
                    entries: Vec::new(),
                };
            }
        }
        Waiting::Hash(HashMap::new())
    }

    fn file<S: RedundancyScheme + ?Sized>(
        &mut self,
        scheme: &S,
        blocker: BlockId,
        target: u32,
        data_blocks: u64,
    ) {
        match self {
            Waiting::Dense { head, entries } => {
                // A blocker outside the universe can never commit, so
                // there is nothing to subscribe to.
                if let Some(k) = scheme.dense_index(&blocker, data_blocks) {
                    entries.push((head[k as usize], target));
                    head[k as usize] = entries.len() as u32 - 1;
                }
            }
            Waiting::Hash(map) => map.entry(blocker).or_default().push(target),
        }
    }

    /// Invokes `wake` with every target waiting on `committed` and clears
    /// the blocker's list.
    fn wake_each<S: RedundancyScheme + ?Sized>(
        &mut self,
        scheme: &S,
        committed: BlockId,
        data_blocks: u64,
        mut wake: impl FnMut(u32),
    ) {
        match self {
            Waiting::Dense { head, entries } => {
                if let Some(k) = scheme.dense_index(&committed, data_blocks) {
                    let mut cursor = std::mem::replace(&mut head[k as usize], NO_WAITER);
                    while cursor != NO_WAITER {
                        let (next, target) = entries[cursor as usize];
                        wake(target);
                        cursor = next;
                    }
                }
            }
            Waiting::Hash(map) => {
                for target in map.remove(&committed).unwrap_or_default() {
                    wake(target);
                }
            }
        }
    }
}

/// The worklist round loop behind the default
/// [`RedundancyScheme::repair_missing`]: plan each round in parallel
/// against the round-start snapshot, commit sequentially, and re-attempt
/// a failed target only after a block its last error named gets repaired.
fn repair_missing_worklist<S: RedundancyScheme + ?Sized>(
    scheme: &S,
    repo: &dyn BlockRepo,
    targets: &[BlockId],
    data_blocks: u64,
) -> RepairSummary {
    // Targets in stable order; all worklist state is indexed by position
    // in this vector so the per-round bookkeeping is flat array traffic.
    let missing: Vec<BlockId> = targets
        .iter()
        .copied()
        .filter(|&id| !repo.has(id))
        .collect();
    let mut repaired = vec![false; missing.len()];
    // Whether target `i` is worth attempting next round. Every target
    // starts eligible; afterwards only commits of named-missing blockers
    // re-arm a target.
    let mut eligible = vec![true; missing.len()];
    let mut waiting = Waiting::for_repair(scheme, missing.len(), data_blocks);
    let mut rounds = Vec::new();
    let mut blocks_read = 0;
    loop {
        // Attempt set in target order, so planning (and with it commit
        // order and round statistics) matches the serial path.
        let attempts: Vec<u32> = (0..missing.len() as u32)
            .filter(|&i| !repaired[i as usize] && eligible[i as usize])
            .collect();
        if attempts.is_empty() {
            break; // fixpoint: nothing can have become repairable
        }
        let threads = crate::repair_threads().min(attempts.len());
        let mut planned: Vec<(u32, Block)> = Vec::new();
        if threads <= 1 || attempts.len() < PARALLEL_PLAN_MIN {
            // Single planner: attempt inline, filing blockers as they
            // surface — no intermediate result buffer.
            for &i in &attempts {
                match scheme.repair_block(repo, missing[i as usize], data_blocks) {
                    Ok(block) => planned.push((i, block)),
                    Err(err) => {
                        for &blocker in err.missing_blocks() {
                            waiting.file(scheme, blocker, i, data_blocks);
                        }
                    }
                }
            }
        } else {
            // Fan the repair_block attempts out in contiguous chunks;
            // chunk-order merging keeps the result order (and everything
            // derived from it) identical to a serial plan.
            let source: &dyn BlockRepo = repo;
            let missing = &missing;
            let results = crate::par::par_chunks(&attempts, threads, PARALLEL_PLAN_MIN, |chunk| {
                chunk
                    .iter()
                    .map(|&i| {
                        (
                            i,
                            scheme.repair_block(source, missing[i as usize], data_blocks),
                        )
                    })
                    .collect::<Vec<_>>()
            });
            for (i, res) in results {
                match res {
                    Ok(block) => planned.push((i, block)),
                    Err(err) => {
                        for &blocker in err.missing_blocks() {
                            waiting.file(scheme, blocker, i, data_blocks);
                        }
                    }
                }
            }
        }
        for &i in &attempts {
            eligible[i as usize] = false;
        }
        if planned.is_empty() {
            break; // fixpoint: a dead pattern remains
        }
        let planned_ids: Vec<BlockId> = planned.iter().map(|&(i, _)| missing[i as usize]).collect();
        let round_reads = scheme.repair_traffic(&planned_ids);
        blocks_read += round_reads;
        let stats = RoundStats {
            repaired: planned.len(),
            data_repaired: planned_ids.iter().filter(|id| id.is_data()).count(),
            blocks_read: round_reads,
        };
        // Commit together in plan order, making the repairs visible next
        // round and re-arming their waiters.
        for ((i, block), id) in planned.into_iter().zip(planned_ids) {
            repo.store(id, block);
            repaired[i as usize] = true;
            waiting.wake_each(scheme, id, data_blocks, |w| eligible[w as usize] = true);
        }
        rounds.push(stats);
    }
    RepairSummary {
        rounds,
        unrecovered: missing
            .into_iter()
            .zip(&repaired)
            .filter(|(_, &done)| !done)
            .map(|(id, _)| id)
            .collect(),
        blocks_read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::BlockMap;
    use ae_blocks::NodeId;

    /// A toy mirror scheme (1 extra copy) exercising the default
    /// `repair_missing` round loop.
    struct Mirror {
        written: parking_lot::Mutex<u64>,
    }

    impl Mirror {
        fn new() -> Self {
            Mirror {
                written: parking_lot::Mutex::new(0),
            }
        }
    }

    fn data(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    fn copy(i: u64) -> BlockId {
        BlockId::Replica(ae_blocks::ReplicaId {
            node: NodeId(i),
            copy: 1,
        })
    }

    impl RedundancyScheme for Mirror {
        fn scheme_name(&self) -> String {
            "2-way replic.".into()
        }

        fn data_written(&self) -> u64 {
            *self.written.lock()
        }

        fn repair_cost(&self) -> RepairCost {
            RepairCost::new(1, 100.0)
        }

        fn encode_batch(
            &self,
            blocks: &[Block],
            sink: &dyn BlockSink,
        ) -> Result<EncodeReport, AeError> {
            let mut written = self.written.lock();
            let first_node = *written + 1;
            let mut ids = Vec::new();
            for b in blocks {
                *written += 1;
                sink.store(data(*written), b.clone());
                sink.store(copy(*written), b.clone());
                ids.push(data(*written));
                ids.push(copy(*written));
            }
            Ok(EncodeReport { first_node, ids })
        }

        fn repair_block(
            &self,
            source: &dyn BlockSource,
            id: BlockId,
            _data_blocks: u64,
        ) -> Result<Block, RepairError> {
            let other = match id {
                BlockId::Data(NodeId(i)) => copy(i),
                BlockId::Replica(r) => data(r.node.0),
                _ => return Err(RepairError::ForeignBlock { id }),
            };
            source.fetch(other).ok_or(RepairError::NoCompleteTuple {
                target: id,
                missing: vec![other],
            })
        }

        fn block_ids(&self, data_blocks: u64) -> Vec<BlockId> {
            (1..=data_blocks).flat_map(|i| [data(i), copy(i)]).collect()
        }

        fn is_repairable(
            &self,
            id: BlockId,
            _data_blocks: u64,
            avail: &dyn Fn(BlockId) -> bool,
        ) -> bool {
            match id {
                BlockId::Data(NodeId(i)) => avail(copy(i)),
                BlockId::Replica(r) => avail(data(r.node.0)),
                _ => false,
            }
        }
    }

    #[test]
    fn default_repair_missing_round_trips() {
        let scheme = Mirror::new();
        let store = BlockMap::new();
        let blocks: Vec<Block> = (0..10u8).map(|k| Block::from_vec(vec![k; 8])).collect();
        let report = scheme.encode_batch(&blocks, &store).unwrap();
        assert_eq!(report.first_node, 1);
        assert_eq!(report.data_written(), 10);
        assert_eq!(report.redundancy_written(), 10);

        // Lose a data block and an unrelated copy.
        let original = store.remove(&data(4)).unwrap();
        store.remove(&copy(7));
        let summary = scheme.repair_missing(&store, &[data(4), copy(7)], 10);
        assert!(summary.fully_recovered());
        assert_eq!(summary.round_count(), 1);
        assert_eq!(summary.total_repaired(), 2);
        assert_eq!(summary.blocks_read, 2);
        assert_eq!(store.get(&data(4)).unwrap(), original);
        assert!(summary.into_result().is_ok());
    }

    #[test]
    fn default_repair_missing_reports_dead_blocks() {
        let scheme = Mirror::new();
        let store = BlockMap::new();
        scheme
            .encode_batch(&[Block::zero(4), Block::from_vec(vec![1; 4])], &store)
            .unwrap();
        // Both copies of block 2 gone: unrecoverable.
        store.remove(&data(2));
        store.remove(&copy(2));
        let summary = scheme.repair_missing(&store, &[data(2), copy(2)], 2);
        assert!(!summary.fully_recovered());
        assert_eq!(summary.unrecovered.len(), 2);
        assert!(matches!(
            summary.into_result(),
            Err(RepairError::Unrecoverable { targets }) if targets.len() == 2
        ));
    }

    #[test]
    fn parallel_planner_matches_serial_reference() {
        // Same disaster, both planners: summaries must be bit-identical.
        let build = || {
            let scheme = Mirror::new();
            let store = BlockMap::new();
            let blocks: Vec<Block> = (0..40u8).map(|k| Block::from_vec(vec![k; 8])).collect();
            scheme.encode_batch(&blocks, &store).unwrap();
            // Mixed pattern: repairable singles, two dead pairs, and an
            // already-present target.
            for i in [3u64, 9, 17, 25] {
                store.remove(&data(i));
            }
            store.remove(&copy(9));
            store.remove(&data(33));
            store.remove(&copy(33));
            // i = 9 and i = 33 lose both copies: unrecoverable.
            (scheme, store)
        };
        let targets: Vec<BlockId> = [3u64, 9, 17, 25, 33]
            .into_iter()
            .flat_map(|i| [data(i), copy(i)])
            .collect();
        let (scheme_a, store_a) = build();
        let (scheme_b, store_b) = build();
        let parallel = scheme_a.repair_missing(&store_a, &targets, 40);
        let serial = scheme_b.repair_missing_serial(&store_b, &targets, 40);
        assert_eq!(parallel, serial);
        assert_eq!(
            parallel.unrecovered,
            vec![data(9), copy(9), data(33), copy(33)]
        );
        assert_eq!(store_a, store_b);
    }

    #[test]
    fn chunked_plan_matches_inline_plan() {
        // The scoped-thread fan-out must return results in attempt order,
        // whatever the thread count — including counts that do not divide
        // the attempt set evenly.
        let scheme = Mirror::new();
        let store = BlockMap::new();
        let blocks: Vec<Block> = (0..50u8).map(|k| Block::from_vec(vec![k; 8])).collect();
        scheme.encode_batch(&blocks, &store).unwrap();
        for i in 1..=50u64 {
            store.remove(&data(i));
            if i % 5 == 0 {
                store.remove(&copy(i)); // every fifth block is dead
            }
        }
        let missing: Vec<BlockId> = (1..=50).map(data).collect();
        let attempts: Vec<u32> = (0..50).collect();
        let repo: &dyn crate::BlockRepo = &store;
        let plan = |chunk: &[u32]| -> Vec<(u32, bool)> {
            chunk
                .iter()
                .map(|&i| {
                    (
                        i,
                        scheme.repair_block(repo, missing[i as usize], 50).is_ok(),
                    )
                })
                .collect()
        };
        let inline = plan(&attempts);
        assert_eq!(inline.iter().filter(|(_, ok)| !ok).count(), 10);
        for threads in [2usize, 3, 7, 64] {
            let chunked = crate::par::par_chunks(&attempts, threads, 1, plan);
            assert_eq!(chunked, inline, "{threads} threads");
        }
    }

    #[test]
    fn default_dense_index_hooks_are_inert() {
        let scheme = Mirror::new();
        assert!(!scheme.supports_dense_index());
        assert_eq!(scheme.dense_index(&data(1), 10), None);
        // The enumeration fallbacks still answer the universe size and
        // the position → id direction.
        assert_eq!(scheme.universe_len(10), 20);
        assert_eq!(scheme.block_at(0, 10), Some(data(1)));
        assert_eq!(scheme.block_at(1, 10), Some(copy(1)));
        assert_eq!(scheme.block_at(19, 10), Some(copy(10)));
        assert_eq!(scheme.block_at(20, 10), None);
        // No extremity exposure by default.
        assert_eq!(scheme.repair_cost().extremity_exposed, 0);
    }

    #[test]
    fn default_frontier_surface_is_counter_only_and_restore_opt_in() {
        let scheme = Mirror::new();
        let store = BlockMap::new();
        scheme
            .encode_batch(&[Block::zero(4), Block::zero(4)], &store)
            .unwrap();
        // The default snapshot is the LE write counter…
        assert_eq!(scheme.frontier_snapshot(), 2u64.to_le_bytes().to_vec());
        // …and restoring is opt-in: the default refuses, naming the scheme.
        let err = scheme
            .restore_frontier(&scheme.frontier_snapshot(), &store)
            .unwrap_err();
        assert!(
            matches!(err, AeError::FrontierUnsupported { ref scheme } if scheme == "2-way replic.")
        );
    }

    #[test]
    fn scheme_is_object_safe_and_shareable() {
        use std::sync::Arc;
        let shared: Arc<dyn RedundancyScheme> = Arc::new(Mirror::new());
        let store = BlockMap::new();
        // Encoding through a shared handle: no &mut anywhere.
        shared.encode_batch(&[Block::zero(4)], &store).unwrap();
        assert_eq!(shared.scheme_name(), "2-way replic.");
        assert_eq!(shared.data_written(), 1);
        assert_eq!(shared.block_ids(1).len(), 2);
    }
}
