//! Canonical placement policies: mapping blocks to locations.
//!
//! The paper's simulations distribute blocks "in n locations using random
//! placements, i.e., each block is assigned a random number from 0 to n−1"
//! (§V.C), and note that their earlier work assumed round-robin placement,
//! which guarantees that lattice neighbours land in different failure
//! domains but "might be difficult to implement". Both the byte-plane
//! stores (`ae-store`) and the availability-plane simulation (`ae-sim`)
//! need this mapping; this module is the one implementation both layers
//! share.
//!
//! A policy maps a stable 64-bit *key* to one of `n` locations:
//!
//! * [`Placement::place_dense`] keys by a block's dense universe position
//!   (the `dense_index`/`block_at` bijection of
//!   [`crate::RedundancyScheme`]) — the simulation side, O(1) arithmetic
//!   per position, no per-deployment state.
//! * [`Placement::place_key`] keys by any caller-derived id key — the
//!   store side, which derives keys from [`ae_blocks::BlockId`]s so that
//!   blocks of different schemes never collide.

/// A deterministic key-to-location mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniform pseudo-random placement keyed by block key and seed — the
    /// paper's default model (§V.C).
    Random {
        /// Seed mixed into the hash so different runs get different maps.
        seed: u64,
    },
    /// Round-robin: key `k` goes to location `k mod n`. Guarantees
    /// neighbouring keys sit in distinct failure domains when `n` exceeds
    /// the neighbourhood size — the authors' earlier assumption, kept for
    /// the placement ablation ("we think a round robin placement might be
    /// difficult to implement", §V.C).
    RoundRobin,
}

impl Placement {
    /// The location for the block at dense universe position `k` among `n`
    /// locations. Pure arithmetic — callers need no per-deployment
    /// placement table.
    ///
    /// # Panics
    ///
    /// Panics for `n = 0`.
    #[inline]
    pub fn place_dense(&self, k: u64, n: u32) -> u32 {
        self.place_key(k, n)
    }

    /// The location for an arbitrary stable 64-bit block key among `n`
    /// locations (store layers derive keys from block ids).
    ///
    /// # Panics
    ///
    /// Panics for `n = 0`.
    #[inline]
    pub fn place_key(&self, key: u64, n: u32) -> u32 {
        assert!(n > 0, "placement needs at least one location");
        match self {
            Placement::Random { seed } => (mix64(key, *seed) % n as u64) as u32,
            Placement::RoundRobin => (key % n as u64) as u32,
        }
    }
}

/// SplitMix64 finalizer: a well-distributed 64-bit mix of `x` under
/// `seed`.
///
/// This is the workspace's canonical seeded hash — random placement keys
/// through it, and the simulation layer's seeded failure models (bit-rot
/// sampling, placement-group shuffles, per-epoch churn seeds) derive
/// their streams from it, so a `(seed, config)` pair names one exact
/// outcome everywhere with no external RNG crate in the contract.
#[inline]
pub fn mix64(x: u64, seed: u64) -> u64 {
    let mut z = x.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let p = Placement::Random { seed: 99 };
        for k in 0..100 {
            assert_eq!(p.place_dense(k, 100), p.place_dense(k, 100));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Placement::Random { seed: 1 };
        let b = Placement::Random { seed: 2 };
        let moved = (0..1000)
            .filter(|&k| a.place_dense(k, 100) != b.place_dense(k, 100))
            .count();
        assert!(moved > 900, "only {moved} of 1000 moved");
    }

    #[test]
    fn random_placement_is_roughly_uniform() {
        let p = Placement::Random { seed: 5 };
        let n = 100u32;
        let mut counts = vec![0u32; n as usize];
        for k in 0..100_000u64 {
            counts[p.place_dense(k, n) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Mean 1000 per location; allow generous but telling bounds.
        assert!(*min > 800 && *max < 1200, "min {min}, max {max}");
    }

    #[test]
    fn round_robin_separates_neighbours_and_wraps() {
        let p = Placement::RoundRobin;
        assert_eq!(p.place_dense(0, 4), 0);
        assert_eq!(p.place_dense(3, 4), 3);
        assert_eq!(p.place_dense(4, 4), 0, "wraps");
        let set: std::collections::HashSet<u32> = (0..4).map(|k| p.place_dense(k, 100)).collect();
        assert_eq!(set.len(), 4, "neighbours in distinct locations");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_locations_rejected() {
        Placement::RoundRobin.place_dense(1, 0);
    }
}
