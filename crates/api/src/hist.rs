//! A log-scaled histogram over unit-less `u64` samples.
//!
//! One bucket scheme serves every distribution the workspace summarizes:
//! the serving layer's latency accounting (`ae_service::LatencyHistogram`
//! wraps this type with `Duration` conversions) and the sweep harness's
//! per-cell repair-cost distributions. 64 power-of-two decades × 4
//! sub-buckets give ≤ 25% worst-case relative bucket width in constant
//! memory; recording is O(1) and histograms merge by bucket-wise addition,
//! so shards and sweep cells can be folded together losslessly.

/// Sub-buckets per power-of-two decade: index = (exponent << 2) | top two
/// mantissa bits, giving ≤ 2^-2 relative bucket width.
const SUBS: usize = 4;
const BUCKETS: usize = 64 * SUBS;

/// A log-scaled histogram over `u64` values.
///
/// Recording is O(1); quantile extraction returns the lower bound of the
/// bucket holding the requested rank, so reported quantiles are
/// conservative (never above the true value by more than one bucket
/// width). Values below the sub-bucket count (4) get exact unit buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        if v < SUBS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        (exp << 2) | sub
    }

    /// Lower bound of bucket `i` — what quantiles report.
    fn bucket_floor(i: usize) -> u64 {
        if i < SUBS {
            return i as u64;
        }
        let exp = i >> 2;
        let sub = (i & 0b11) as u64;
        (1u64 << exp) | (sub << (exp - 2))
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value in O(1) — how callers with
    /// pre-aggregated counts (a repair round that fixed `n` blocks at the
    /// same per-block cost) feed the histogram without a loop.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean value, `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        Some((self.sum / self.total as u128) as u64)
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of recorded samples at or below `limit` (bucket-granular:
    /// the bucket containing `limit` counts in full).
    pub fn count_at_most(&self, limit: u64) -> u64 {
        self.counts[..=Self::bucket(limit)].iter().sum()
    }

    /// The `q`-quantile (`0.0..=1.0`), `None` when empty. `0.5` is p50,
    /// `0.99` is p99.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_conservative() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max());
        // Conservative: the p50 bucket floor sits within one bucket (≤25%)
        // of the true median of 500_000.
        assert!((375_000..=500_000).contains(&p50));
        assert!(h.mean().unwrap() > 400_000);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..100u64 {
            let v = i * i + 1;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn record_n_matches_a_loop() {
        let mut bulk = LogHistogram::new();
        bulk.record_n(37, 5);
        bulk.record_n(37, 0); // no-op
        let mut looped = LogHistogram::new();
        for _ in 0..5 {
            looped.record(37);
        }
        assert_eq!(bulk, looped);
        assert_eq!(bulk.sum(), 5 * 37);
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn tiny_values_use_exact_buckets() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(3);
        assert_eq!(h.quantile(0.01).unwrap(), 0);
        assert_eq!(h.quantile(1.0).unwrap(), 3);
        assert_eq!(h.count_at_most(0), 1);
        assert_eq!(h.count_at_most(3), 2);
    }
}
