//! Async mirrors of the backend family: [`AsyncBlockSource`] /
//! [`AsyncBlockSink`] / [`AsyncBlockRepo`].
//!
//! The sync family ([`crate::BlockSource`] and friends) models backends
//! whose operations complete at call time — memory, a local disk array, a
//! test harness. Remote backends are different in kind: a fetch is a
//! round trip, and issuing several round trips **concurrently** is the
//! whole point (a repair that fetches its survivor set one block at a
//! time pays `O(blocks × RTT)`; a pipelined repair with a bounded
//! in-flight window pays `O(blocks × RTT / window)`). This module defines
//! the async side of that story without committing `ae_api` to any
//! particular executor:
//!
//! * the three **async mirror traits**, object-safe via [`BoxFuture`], so
//!   pipelines hold `&dyn AsyncBlockRepo` exactly as sync code holds
//!   `&dyn BlockRepo`;
//! * a **blanket sync→async adapter**: every `&S` where `S:
//!   BlockSource`/`BlockSink` implements the async mirror with
//!   ready-immediate futures (the operation runs at future-creation time
//!   and the future resolves on first poll), so every existing backend —
//!   Mem, Distributed, Tiered, Faulty — is usable in async pipelines
//!   unchanged;
//! * the **discovery hook** [`crate::BlockSource::as_async`] plus the
//!   [`AsyncHandle`] / [`BlockOnDriver`] pair it returns: a sync-facing
//!   wrapper around a natively-async backend (such as `ae_aio`'s
//!   latency-injecting store) advertises its async interior here, and
//!   sync callers (the archive's degraded `get` and `scrub`) switch to
//!   the pipelined path when the hook answers `Some`.
//!
//! The driver indirection exists because executors live *above* this
//! crate (vendored in `ae_aio`): a handle must carry not just the async
//! repo but also something that can run its futures to completion, and
//! that something is whatever runtime the wrapper owns.

use crate::error::StoreError;
use crate::io::{BlockSink, BlockSource};
use ae_blocks::{Block, BlockId};
use std::future::Future;
use std::pin::Pin;

/// An owned, type-erased future — the object-safe currency of the async
/// backend traits (the async analogue of returning `Box<dyn ...>`).
pub type BoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + Send + 'a>>;

/// The async mirror of [`BlockSource`]: something blocks can be read
/// from, where each read is a future that may take (simulated or real)
/// time to resolve.
///
/// Semantics match the sync family method for method: `fetch_async`
/// answers `None` for anything unavailable, `read_async` distinguishes
/// absent from corrupted via [`StoreError`] — plus the async-only
/// failure mode [`StoreError::TimedOut`] for a remote that stopped
/// answering.
pub trait AsyncBlockSource: Sync {
    /// Fetches a block if it is currently available (async mirror of
    /// [`BlockSource::fetch`]). An unreachable or timed-out remote
    /// resolves to `None`, never hangs forever.
    fn fetch_async(&self, id: BlockId) -> BoxFuture<'_, Option<Block>>;

    /// Whether the block is currently available (async mirror of
    /// [`BlockSource::has`]).
    fn has_async(&self, id: BlockId) -> BoxFuture<'_, bool>;

    /// Error-typed read (async mirror of [`BlockSource::read`]):
    /// additionally reports [`StoreError::TimedOut`] when the backend
    /// gave up retrying a dead remote.
    fn read_async(&self, id: BlockId) -> BoxFuture<'_, Result<Block, StoreError>>;
}

/// The async mirror of [`BlockSink`]: something blocks can be written to.
pub trait AsyncBlockSink: Sync {
    /// Stores a block (async mirror of [`BlockSink::store`]). A write to
    /// a dead remote is swallowed once retries are exhausted — the sink
    /// signature has no error channel, matching the sync family.
    fn store_async(&self, id: BlockId, block: Block) -> BoxFuture<'_, ()>;

    /// Removes a block, resolving to whether it was present (async
    /// mirror of [`BlockSink::remove`]); `false` when the remote timed
    /// out.
    fn remove_async(&self, id: BlockId) -> BoxFuture<'_, bool>;
}

/// A combined async source + sink, as pipelined repair requires — the
/// async analogue of [`crate::BlockRepo`].
pub trait AsyncBlockRepo: AsyncBlockSource + AsyncBlockSink {}

impl<T: AsyncBlockSource + AsyncBlockSink + ?Sized> AsyncBlockRepo for T {}

// --- the blanket sync→async adapter --------------------------------------
//
// Implemented over `&S` (the family's natural shared handle) rather than
// `S` itself so that natively-async backends downstream can implement the
// mirror traits directly without colliding with the blanket impl —
// coherence permits both because no concrete type is ever simultaneously
// a `&S` and a downstream store.

impl<S: BlockSource + ?Sized> AsyncBlockSource for &S {
    /// Ready-immediate adapter: the sync fetch runs when the future is
    /// created and the future resolves on first poll.
    fn fetch_async(&self, id: BlockId) -> BoxFuture<'_, Option<Block>> {
        Box::pin(std::future::ready((**self).fetch(id)))
    }

    fn has_async(&self, id: BlockId) -> BoxFuture<'_, bool> {
        Box::pin(std::future::ready((**self).has(id)))
    }

    fn read_async(&self, id: BlockId) -> BoxFuture<'_, Result<Block, StoreError>> {
        Box::pin(std::future::ready((**self).read(id)))
    }
}

impl<S: BlockSink + Sync + ?Sized> AsyncBlockSink for &S {
    fn store_async(&self, id: BlockId, block: Block) -> BoxFuture<'_, ()> {
        (**self).store(id, block);
        Box::pin(std::future::ready(()))
    }

    fn remove_async(&self, id: BlockId) -> BoxFuture<'_, bool> {
        Box::pin(std::future::ready((**self).remove(id)))
    }
}

/// Runs async-backend futures to completion on whatever executor the
/// backend's wrapper owns.
///
/// Lives here (not in the executor crate) so that
/// [`crate::BlockSource::as_async`] can hand sync callers a complete
/// [`AsyncHandle`] without `ae_api` depending on any runtime: the
/// executor crate implements this trait for its runtime, and archive
/// code drives pipelines through the trait object.
pub trait BlockOnDriver: Sync {
    /// Drives `fut` to completion, advancing whatever timers and virtual
    /// or real clock the executor owns while the future is pending.
    fn drive(&self, fut: BoxFuture<'_, ()>);
}

/// A natively-async backend together with the driver that can run its
/// futures — what [`crate::BlockSource::as_async`] returns.
///
/// Holding the pair keeps call sites one-liners: build a future against
/// [`AsyncHandle::repo`], run it with [`AsyncHandle::run`].
#[derive(Clone, Copy)]
pub struct AsyncHandle<'a> {
    /// The async backend itself.
    pub repo: &'a dyn AsyncBlockRepo,
    /// Drives the backend's futures to completion.
    pub driver: &'a dyn BlockOnDriver,
}

impl AsyncHandle<'_> {
    /// Runs `fut` to completion on the handle's driver and returns its
    /// output — the bridge sync code uses to execute one pipelined phase.
    pub fn run<T: Send>(&self, fut: BoxFuture<'_, T>) -> T {
        let mut out = None;
        let slot = &mut out;
        self.driver.drive(Box::pin(async move {
            *slot = Some(fut.await);
        }));
        out.expect("BlockOnDriver::drive returned before the future completed")
    }
}

impl std::fmt::Debug for AsyncHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::BlockMap;
    use ae_blocks::NodeId;
    use std::task::{Context, Poll, Waker};

    fn id(i: u64) -> BlockId {
        BlockId::Data(NodeId(i))
    }

    /// Polls a future that must already be ready (the blanket adapter's
    /// contract) without any executor.
    fn now_or_never<T>(mut fut: BoxFuture<'_, T>) -> T {
        let mut cx = Context::from_waker(Waker::noop());
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => v,
            Poll::Pending => panic!("blanket adapter futures must be ready-immediate"),
        }
    }

    #[test]
    fn blanket_adapter_mirrors_the_sync_family() {
        let map = BlockMap::new();
        let src = &map;
        assert_eq!(now_or_never(src.fetch_async(id(1))), None);
        assert!(!now_or_never(src.has_async(id(1))));
        assert_eq!(
            now_or_never(src.read_async(id(1))),
            Err(StoreError::NotFound(id(1)))
        );
        now_or_never(src.store_async(id(1), Block::from_vec(vec![7])));
        assert!(now_or_never(src.has_async(id(1))));
        assert_eq!(
            now_or_never(src.fetch_async(id(1))).unwrap().as_slice(),
            &[7]
        );
        assert!(now_or_never(src.remove_async(id(1))));
        assert!(!now_or_never(src.remove_async(id(1))));
    }

    #[test]
    fn blanket_adapter_is_object_safe() {
        let map = BlockMap::new();
        map.store(id(2), Block::zero(4));
        let by_ref = &map;
        let repo: &dyn AsyncBlockRepo = &by_ref;
        assert!(now_or_never(repo.has_async(id(2))));
        assert_eq!(now_or_never(repo.fetch_async(id(2))).unwrap().len(), 4);
    }

    #[test]
    fn sync_backends_advertise_no_native_async_interior() {
        let map = BlockMap::new();
        assert!(map.as_async().is_none());
        // The forwarding impls keep the default too.
        let by_ref: &BlockMap = &map;
        assert!(<&BlockMap as BlockSource>::as_async(&by_ref).is_none());
        assert!(std::sync::Arc::new(BlockMap::new()).as_async().is_none());
    }
}
