//! Scheme-agnostic public API for redundancy codes.
//!
//! The paper compares alpha entanglement codes against Reed-Solomon and
//! replication; this crate defines the one interface all three implement so
//! that every other layer — stores, archives, simulations, benchmarks,
//! examples — is written once against [`RedundancyScheme`] and runs against
//! any code:
//!
//! * [`RedundancyScheme`] — the object-safe trait: batch-first encoding
//!   ([`RedundancyScheme::encode_batch`]), single-block and round-based
//!   repair ([`RedundancyScheme::repair_block`],
//!   [`RedundancyScheme::repair_missing`]), the Table IV cost model
//!   ([`RedundancyScheme::repair_cost`]) and the structural hooks the
//!   availability-plane simulation drives
//!   ([`RedundancyScheme::is_repairable`] and friends).
//! * [`BlockSource`] / [`BlockSink`] — where blocks come from and go to.
//!   Implemented by the plain in-memory [`BlockMap`] and by `ae_store`'s
//!   stores, so encode and repair never care where bytes live.
//! * [`AeError`] / [`RepairError`] — the error hierarchy. Repairs report
//!   *which* tuple members were missing instead of a bare `None`.
//!
//! Implementations live next to each code: `ae_core::Code` (alpha
//! entanglement), `ae_baselines::ReedSolomon` and
//! `ae_baselines::Replication`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod io;
pub mod par;
pub mod placement;
pub mod scheme;

pub use error::{AeError, RepairError};
pub use io::{BlockMap, BlockRepo, BlockSink, BlockSource, Overlay};
pub use par::repair_threads;
pub use placement::Placement;
pub use scheme::{EncodeReport, RedundancyScheme, RepairCost, RepairSummary, RoundStats};
