//! Scheme-agnostic public API for redundancy codes.
//!
//! The paper compares alpha entanglement codes against Reed-Solomon and
//! replication; this crate defines the one interface all three implement so
//! that every other layer — stores, archives, simulations, benchmarks,
//! examples — is written once against [`RedundancyScheme`] and runs against
//! any code:
//!
//! * [`RedundancyScheme`] — the object-safe trait: batch-first encoding
//!   ([`RedundancyScheme::encode_batch`]), single-block and round-based
//!   repair ([`RedundancyScheme::repair_block`],
//!   [`RedundancyScheme::repair_missing`]), the Table IV cost model
//!   ([`RedundancyScheme::repair_cost`]) and the structural hooks the
//!   availability-plane simulation drives
//!   ([`RedundancyScheme::is_repairable`] and friends). Encoding state
//!   lives behind interior mutability, so a scheme is shared as
//!   `Arc<dyn RedundancyScheme>` between archives, planes and repair
//!   workers.
//! * [`BlockSource`] / [`BlockSink`] / [`BlockRepo`] — the **one** backend
//!   family: where blocks come from and go to, plus the failure surface
//!   every backend shares (`None` for unavailable, the error-typed
//!   [`BlockSource::read`] distinguishing absent from corrupted via
//!   [`StoreError`], and [`BlockSink::remove`] for deletion). Every method
//!   takes `&self`; backends are interior-mutable and shared by `Arc` or
//!   `&` handle. Implemented by the in-memory [`BlockMap`] and by every
//!   `ae_store` backend (plain, distributed, tiered, fault-injecting), so
//!   encode, repair and archival never care where bytes live — and there
//!   is no adapter layer between "repair-facing" and "store-facing" trait
//!   families, because there is only one family.
//! * [`AsyncBlockSource`] / [`AsyncBlockSink`] / [`AsyncBlockRepo`] — the
//!   object-safe **async mirror** of the backend family, with a blanket
//!   sync→async adapter (every `&S` of the sync family is a
//!   ready-immediate async backend) and the [`BlockSource::as_async`]
//!   discovery hook through which latency-aware wrappers expose their
//!   native async interior to pipelined callers (see `ae_aio`).
//! * [`Placement`] — the canonical placement policies shared by the store
//!   and simulation layers.
//! * [`AeError`] / [`RepairError`] / [`StoreError`] — the error hierarchy.
//!   Repairs report *which* tuple members were missing instead of a bare
//!   `None`.
//!
//! Implementations live next to each code: `ae_core::Code` (alpha
//! entanglement), `ae_baselines::ReedSolomon`, `ae_baselines::Replication`
//! and the `ae_store` use-case schemes (`EntangledChain`, `GeoLattice`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aio;
pub mod error;
pub mod frontier;
pub mod hist;
pub mod io;
pub mod par;
pub mod placement;
pub mod scheme;

pub use aio::{
    AsyncBlockRepo, AsyncBlockSink, AsyncBlockSource, AsyncHandle, BlockOnDriver, BoxFuture,
};
pub use error::{AeError, RepairError, StoreError};
pub use frontier::{SnapshotReader, SnapshotWriter};
pub use hist::LogHistogram;
pub use io::{BlockMap, BlockRepo, BlockSink, BlockSource, Overlay};
pub use par::repair_threads;
pub use placement::{mix64, Placement};
pub use scheme::{EncodeReport, RedundancyScheme, RepairCost, RepairSummary, RoundStats};
