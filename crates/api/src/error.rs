//! The error hierarchy of the scheme-agnostic API.
//!
//! Three families, mirroring the thirds of the public surface:
//! [`AeError`] for encoding and configuration, [`RepairError`] for decode
//! paths, and [`StoreError`] for the backend traits ([`crate::BlockSource`]
//! and friends). Repair errors carry the block ids that made the repair
//! impossible, so callers (and log readers) see *which* tuple members were
//! missing rather than a bare `None`.

use ae_blocks::{BlockError, BlockId};
use std::fmt;

/// Top-level error for encode and configuration operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AeError {
    /// A block had the wrong size for the scheme.
    SizeMismatch {
        /// Size the scheme encodes, in bytes.
        expected: usize,
        /// Size of the offending block.
        actual: usize,
    },
    /// A block-level operation failed (checksum, XOR size, ...).
    Block(BlockError),
    /// A repair failed; see the wrapped error for the missing members.
    Repair(RepairError),
    /// The scheme cannot handle the given block id (for example an
    /// entanglement code asked about a Reed-Solomon shard).
    ForeignBlock {
        /// The id the scheme does not recognise.
        id: BlockId,
    },
    /// A persisted encoder-frontier snapshot could not be decoded (wrong
    /// version, wrong length, inconsistent counters). See
    /// [`crate::RedundancyScheme::restore_frontier`].
    CorruptFrontier {
        /// What exactly failed to parse.
        detail: String,
    },
    /// Restoring the encoder frontier needed a block the backend no
    /// longer holds (for example an in-flight strand parity, or a
    /// buffered partial-stripe data block) — the error names exactly
    /// what was lost.
    FrontierBlockMissing {
        /// The block the restore could not fetch.
        id: BlockId,
    },
    /// The scheme does not implement the frontier snapshot/restore
    /// surface, so its archives cannot be reopened after a crash.
    FrontierUnsupported {
        /// The scheme's display name.
        scheme: String,
    },
}

impl fmt::Display for AeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AeError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "block size mismatch: scheme encodes {expected} bytes, got {actual}"
                )
            }
            AeError::Block(e) => write!(f, "block error: {e}"),
            AeError::Repair(e) => write!(f, "repair failed: {e}"),
            AeError::ForeignBlock { id } => {
                write!(f, "block {id} does not belong to this scheme")
            }
            AeError::CorruptFrontier { detail } => {
                write!(f, "corrupt encoder-frontier snapshot: {detail}")
            }
            AeError::FrontierBlockMissing { id } => {
                write!(f, "cannot restore encoder frontier: block {id} is gone")
            }
            AeError::FrontierUnsupported { scheme } => {
                write!(
                    f,
                    "scheme {scheme} does not support frontier snapshot/restore"
                )
            }
        }
    }
}

impl std::error::Error for AeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AeError::Block(e) => Some(e),
            AeError::Repair(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockError> for AeError {
    fn from(e: BlockError) -> Self {
        AeError::Block(e)
    }
}

impl From<RepairError> for AeError {
    fn from(e: RepairError) -> Self {
        AeError::Repair(e)
    }
}

/// Errors from backend read operations (the failure surface every storage
/// backend shares — see [`crate::BlockSource::read`]).
///
/// Lived in `ae_store` as long as backends had their own trait family;
/// with one unified family the error type lives here, next to the traits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested block is not in the backend (or its location is
    /// currently unreachable — to a decoder both mean "not available").
    NotFound(BlockId),
    /// The stored block failed checksum verification — corruption or
    /// tampering detected at read time.
    Corrupted(BlockId),
    /// The backend gave up waiting on a remote that stopped answering:
    /// every per-operation timeout and typed retry was exhausted (see
    /// `ae_aio`'s latency-injecting store). A dead remote degrades to
    /// this error instead of a hang; to a decoder it still means "not
    /// available", but callers and log readers see *why*.
    TimedOut(BlockId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "block {id} not found"),
            StoreError::Corrupted(id) => write!(f, "block {id} failed integrity verification"),
            StoreError::TimedOut(id) => {
                write!(f, "block {id} timed out: remote exhausted every retry")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Why a repair could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepairError {
    /// No repair tuple of the target is complete. `missing` lists the
    /// blocks that would have completed a tuple — the exact reads that
    /// failed, deduplicated, in tuple order.
    NoCompleteTuple {
        /// The block that could not be repaired.
        target: BlockId,
        /// Tuple members that were unavailable.
        missing: Vec<BlockId>,
    },
    /// Round-based repair reached a fixpoint with targets left over (a
    /// dead pattern in entanglement terms; an over-erased stripe for
    /// Reed-Solomon; all copies gone for replication).
    Unrecoverable {
        /// Targets still missing at the fixpoint.
        targets: Vec<BlockId>,
    },
    /// The id does not belong to the scheme performing the repair.
    ForeignBlock {
        /// The unrecognised id.
        id: BlockId,
    },
    /// The id lies outside the written extent of the scheme.
    OutOfExtent {
        /// The offending id.
        id: BlockId,
        /// Number of data blocks actually written.
        written: u64,
    },
}

impl RepairError {
    /// The blocks whose unavailability caused this error (empty for
    /// [`RepairError::ForeignBlock`] / [`RepairError::OutOfExtent`]).
    pub fn missing_blocks(&self) -> &[BlockId] {
        match self {
            RepairError::NoCompleteTuple { missing, .. } => missing,
            RepairError::Unrecoverable { targets } => targets,
            _ => &[],
        }
    }
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::NoCompleteTuple { target, missing } => {
                write!(f, "no complete repair tuple for {target}: missing ")?;
                for (k, id) in missing.iter().enumerate() {
                    if k > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{id}")?;
                }
                Ok(())
            }
            RepairError::Unrecoverable { targets } => write!(
                f,
                "{} block(s) unrecoverable after round-based repair (dead pattern)",
                targets.len()
            ),
            RepairError::ForeignBlock { id } => {
                write!(f, "block {id} does not belong to this scheme")
            }
            RepairError::OutOfExtent { id, written } => {
                write!(
                    f,
                    "block {id} lies outside the written extent ({written} data blocks)"
                )
            }
        }
    }
}

impl std::error::Error for RepairError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_blocks::{EdgeId, NodeId, StrandClass};

    #[test]
    fn no_complete_tuple_names_the_missing_members() {
        let e = RepairError::NoCompleteTuple {
            target: BlockId::Data(NodeId(26)),
            missing: vec![
                BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(21))),
                BlockId::Parity(EdgeId::new(StrandClass::Horizontal, NodeId(26))),
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("d26"), "{msg}");
        assert!(msg.contains("p[h]21→"), "{msg}");
        assert!(msg.contains("p[h]26→"), "{msg}");
        assert_eq!(e.missing_blocks().len(), 2);
    }

    #[test]
    fn errors_nest_with_sources() {
        use std::error::Error as _;
        let inner = RepairError::Unrecoverable {
            targets: vec![BlockId::Data(NodeId(1))],
        };
        let outer = AeError::from(inner.clone());
        assert!(outer.source().is_some());
        assert!(outer.to_string().contains("unrecoverable"));
        assert_eq!(inner.missing_blocks(), &[BlockId::Data(NodeId(1))]);
    }

    #[test]
    fn display_covers_all_variants() {
        let texts = [
            AeError::SizeMismatch {
                expected: 8,
                actual: 9,
            }
            .to_string(),
            AeError::ForeignBlock {
                id: BlockId::Data(NodeId(3)),
            }
            .to_string(),
            RepairError::ForeignBlock {
                id: BlockId::Data(NodeId(3)),
            }
            .to_string(),
            RepairError::OutOfExtent {
                id: BlockId::Data(NodeId(9)),
                written: 4,
            }
            .to_string(),
        ];
        for t in texts {
            assert!(!t.is_empty());
        }
    }
}
