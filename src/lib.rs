//! Alpha entanglement codes — umbrella crate.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single package. See the individual crates for the
//! full APIs:
//!
//! * [`blocks`] — block primitives, XOR kernels, CRC32.
//! * [`gf`] — GF(2^8) arithmetic for the Reed-Solomon baseline.
//! * [`lattice`] — the helical lattice and minimal-erasure analysis.
//! * [`core`] — the AE(α, s, p) encoder, decoder and repair engine.
//! * [`baselines`] — Reed-Solomon and replication comparison codes.
//! * [`store`] — the simulated distributed storage substrate.
//! * [`sim`] — the disaster-recovery simulation framework.

pub use ae_baselines as baselines;
pub use ae_blocks as blocks;
pub use ae_core as core;
pub use ae_gf as gf;
pub use ae_lattice as lattice;
pub use ae_sim as sim;
pub use ae_store as store;
