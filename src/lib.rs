//! Alpha entanglement codes — umbrella crate.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single package. See the individual crates for the
//! full APIs:
//!
//! * [`api`] — the scheme-agnostic surface: the
//!   [`api::RedundancyScheme`] trait, [`api::BlockSource`] /
//!   [`api::BlockSink`], and the [`api::AeError`] / [`api::RepairError`]
//!   hierarchy.
//! * [`blocks`] — block primitives, XOR kernels, CRC32.
//! * [`gf`] — GF(2^8) arithmetic for the Reed-Solomon baseline.
//! * [`lattice`] — the helical lattice and minimal-erasure analysis.
//! * [`core`] — the AE(α, s, p) encoder, decoder and repair engine.
//! * [`baselines`] — Reed-Solomon and replication comparison codes.
//! * [`store`] — the simulated distributed storage substrate.
//! * [`service`] — the multi-tenant archive serving layer and its
//!   deterministic workload engine.
//! * [`sim`] — the disaster-recovery simulation framework, built on one
//!   generic scheme plane.
//! * [`sweep`] — the reliability-frontier sweep harness: scheme roster ×
//!   failure models into one seeded, byte-stable CSV.
//! * [`aio`] — the async block I/O subsystem: vendored executor +
//!   virtual clock, latency-faithful network backends
//!   ([`aio::LatencyStore`]) and pipelined bounded-in-flight repair.
//!
//! # Quickstart
//!
//! Everything speaks [`api::RedundancyScheme`]: encode a batch, lose
//! blocks, repair — with any code. Swapping `Code` below for
//! [`baselines::ReedSolomon`] or [`baselines::Replication`] changes
//! nothing else.
//!
//! ```
//! use aecodes::api::RedundancyScheme;
//! use aecodes::blocks::{Block, BlockId, NodeId};
//! use aecodes::core::{BlockMap, Code};
//! use aecodes::lattice::Config;
//! use std::sync::Arc;
//!
//! // Schemes and backends are shared-by-default: every method is &self.
//! let scheme: Arc<dyn RedundancyScheme> = Arc::new(Code::new(Config::new(3, 2, 5).unwrap(), 64));
//! let store = BlockMap::new();
//! let blocks: Vec<Block> = (0u8..50).map(|n| Block::from_vec(vec![n; 64])).collect();
//! scheme.encode_batch(&blocks, &store).unwrap();
//!
//! // Lose a few blocks; round-based repair restores them byte-identically.
//! let victims = [BlockId::Data(NodeId(7)), BlockId::Data(NodeId(33))];
//! let originals: Vec<Block> = victims.iter().map(|v| store.remove(v).unwrap()).collect();
//! let summary = scheme.repair_missing(&store, &victims, 50);
//! assert!(summary.fully_recovered());
//! assert_eq!(store.get(&victims[0]).unwrap(), originals[0]);
//!
//! // Failed repairs say which tuple members were missing.
//! let err = scheme.repair_block(&BlockMap::new(), victims[0], 50).unwrap_err();
//! assert!(!err.missing_blocks().is_empty());
//! ```

pub use ae_aio as aio;
pub use ae_api as api;
pub use ae_baselines as baselines;
pub use ae_blocks as blocks;
pub use ae_core as core;
pub use ae_gf as gf;
pub use ae_lattice as lattice;
pub use ae_service as service;
pub use ae_sim as sim;
pub use ae_store as store;
pub use ae_sweep as sweep;
